// Section 10 reproduction: the cost of layering.
//
// The paper reports (on a Sparc 10) that the FRAG layer alone "adds about
// 50 usecs to the one-way latency, which is considerable", and attributes
// layering cost to (1) indirect calls per boundary, (2) locking/threads,
// and (3) word-aligned header push/pop. This bench regenerates the *shape*
// of that result on this host:
//
//   * per-message CPU cost of progressively taller stacks (each row adds
//     one layer; the delta column is that layer's overhead);
//   * header bytes added per layer (the "unused bits" problem);
//   * the hand-FUSED NAK+FRAG production layer vs the composed pair (the
//     paper's proposed remedy of fusing common substacks);
//   * the raw network baseline ("very lightweight protocol stacks permit
//     Horus users to obtain the performance of an ATM network with almost
//     no overhead at all", Section 11).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"

using namespace horus;
using namespace horus::bench;

namespace {

// One cast end-to-end (2 members) per iteration; all simulation work is
// CPU, so per-iteration time is the full two-stack traversal + "network".
void BM_Stack(benchmark::State& state, const std::string& spec,
              std::size_t payload_size) {
  Rig rig(spec);
  Bytes payload(payload_size, 0x61);
  for (auto _ : state) {
    rig.cast_and_settle(payload);
  }
  // Header bytes per data datagram, from the sender's stack stats.
  const StackStats& s = rig.eps[0]->stack().stats();
  if (s.datagrams_sent > 0) {
    state.counters["hdr_B/dgram"] = benchmark::Counter(
        static_cast<double>(s.header_bytes_sent) /
        static_cast<double>(s.datagrams_sent));
  }
}

// Raw network baseline: one datagram, no stack at all.
void BM_RawNetwork(benchmark::State& state) {
  sim::Scheduler sched;
  sim::SimNetwork net(sched);
  net.set_default_params(Rig::fast_net().net);
  std::uint64_t delivered = 0;
  net.attach(2, [&](sim::NodeId, const std::shared_ptr<const Bytes>&) {
    ++delivered;
  });
  Bytes payload(100, 0x61);
  for (auto _ : state) {
    net.send(1, 2, payload);
    sched.run();
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_RawNetwork);

const std::pair<const char*, const char*> kLadder[] = {
    {"COM", "COM"},
    {"NAK:COM", "+NAK"},
    {"FRAG:NAK:COM", "+FRAG"},
    {"MBRSHIP:FRAG:NAK:COM", "+MBRSHIP"},
    {"TOTAL:MBRSHIP:FRAG:NAK:COM", "+TOTAL"},
};

const std::pair<const char*, const char*> kExtras[] = {
    {"CAUSAL:MBRSHIP:FRAG:NAK:COM", "CAUSAL variant"},
    {"CHKSUM:MBRSHIP:FRAG:NAK:COM", "+CHKSUM"},
    {"SIGN:MBRSHIP:FRAG:NAK:COM", "+SIGN"},
    {"ENCRYPT:MBRSHIP:FRAG:NAK:COM", "+ENCRYPT"},
    {"COMPRESS:MBRSHIP:FRAG:NAK:COM", "+COMPRESS"},
    {"FUSED:COM", "FUSED (hand-fused NAK+FRAG)"},
};

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Section 10: per-layer overhead ladder ===\n"
      "Each benchmark measures one multicast end-to-end (2 members) through\n"
      "the given stack; subtract consecutive rows for a layer's added cost.\n"
      "The paper's comparable figure: FRAG alone added ~50us one-way on a\n"
      "Sparc 10. hdr_B/dgram reproduces the header-bytes growth per layer.\n\n");
  for (auto [spec, label] : kLadder) {
    std::string s = spec;
    benchmark::RegisterBenchmark(
        (std::string("ladder/") + label).c_str(),
        [s](benchmark::State& st) { BM_Stack(st, s, 100); });
  }
  for (auto [spec, label] : kExtras) {
    std::string s = spec;
    benchmark::RegisterBenchmark(
        (std::string("extra/") + label).c_str(),
        [s](benchmark::State& st) { BM_Stack(st, s, 100); });
  }
  // Payload scaling on the full stack: does layering cost stay flat while
  // payload cost grows?
  for (std::size_t size : {10u, 1000u, 10'000u}) {
    benchmark::RegisterBenchmark(
        ("payload/TOTAL_stack_" + std::to_string(size) + "B").c_str(),
        [size](benchmark::State& st) {
          BM_Stack(st, "TOTAL:MBRSHIP:FRAG:NAK:COM", size);
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
