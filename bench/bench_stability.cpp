// Section 9/10: the end-to-end stability mechanisms, compared.
//
// "An application can decide whether or not it needs end-to-end
//  guarantees, and, if so, whether STABLE or PINWHEEL will be optimal."
//
// For each mechanism and group size this bench reports, under an identical
// ack-everything workload:
//   * stab_ms(sim): time from a cast until the sender learns the message
//     is stable at every member (the end-to-end latency of the mechanism);
//   * dgrams/s: background datagram rate of the whole group (the traffic
//     cost). STABLE's all-to-all gossip stabilizes faster; PINWHEEL's
//     rotating token is cheaper on the wire -- the trade-off the paper
//     points at.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"

using namespace horus;
using namespace horus::bench;

namespace {

struct StabilityRun {
  sim::Duration stabilize_us = 0;
  double datagrams_per_sec = 0;
};

StabilityRun run_one(const std::string& spec, std::size_t n, std::uint64_t seed) {
  HorusSystem::Options opts;
  opts.seed = seed;
  opts.net.loss = 0.0;
  opts.stack.stability_gossip_interval = 30 * sim::kMillisecond;
  opts.stack.pinwheel_interval = 30 * sim::kMillisecond;
  HorusSystem sys(opts);
  std::vector<Endpoint*> eps;
  sim::Time stable_at = 0;
  for (std::size_t i = 0; i < n; ++i) {
    eps.push_back(&sys.create_endpoint(spec));
    Endpoint* ep = eps.back();
    bool is_sender = i == 0;
    ep->on_upcall([&sys, ep, is_sender, &stable_at](Group& g, UpEvent& ev) {
      if (ev.type == UpType::kCast) {
        ep->ack(g.gid(), ev.source, ev.msg_id);  // app processes instantly
      } else if (ev.type == UpType::kStable && is_sender && stable_at == 0) {
        auto rank = ev.stability.view.rank_of(ep->address());
        if (rank && ev.stability.stable_prefix()[*rank] >= 1) {
          stable_at = sys.now();
        }
      }
    });
  }
  eps[0]->join(kGroup);
  sys.run_for(50 * sim::kMillisecond);
  for (std::size_t i = 1; i < n; ++i) {
    eps[i]->join(kGroup, eps[0]->address());
    sys.run_for(100 * sim::kMillisecond);
  }
  sys.run_for(2 * sim::kSecond);

  std::uint64_t dg0 = sys.net().stats().sent;
  sim::Time t0 = sys.now();
  eps[0]->cast(kGroup, Message::from_string("track"));
  sys.run_for(5 * sim::kSecond);
  StabilityRun r;
  r.stabilize_us = stable_at > t0 ? stable_at - t0 : 0;
  r.datagrams_per_sec =
      static_cast<double>(sys.net().stats().sent - dg0) / 5.0;
  return r;
}

void BM_Stability(benchmark::State& state, const char* layer) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::string spec = std::string(layer) + ":MBRSHIP:FRAG:NAK:COM";
  std::uint64_t seed = 1;
  StabilityRun last;
  for (auto _ : state) {
    last = run_one(spec, n, seed++);
  }
  state.counters["stab_ms(sim)"] =
      benchmark::Counter(static_cast<double>(last.stabilize_us) / 1000.0);
  state.counters["dgrams/s"] = benchmark::Counter(last.datagrams_per_sec);
}

void BM_Stable(benchmark::State& state) { BM_Stability(state, "STABLE"); }
void BM_Pinwheel(benchmark::State& state) { BM_Stability(state, "PINWHEEL"); }

BENCHMARK(BM_Stable)->Arg(3)->Arg(5)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pinwheel)->Arg(3)->Arg(5)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Section 9/10: STABLE vs PINWHEEL ===\n"
      "Arg = group size. stab_ms(sim): cast-to-stability-report latency at\n"
      "the sender. dgrams/s: total group datagram rate while idle-acking.\n"
      "Expect STABLE to stabilize faster but cost O(n) gossip multicasts\n"
      "per interval; PINWHEEL trades latency for one token hop.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
