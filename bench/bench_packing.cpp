// The protocol accelerator, measured: message packing (PACK trains) and
// the batched send path against the same stack running one-message-at-a-
// time. The paper's Section 10 observation is that layered composition
// costs -- per-message descents, per-message headers, per-message
// datagrams -- can be masked by processing messages in groups; the
// interesting number here is the msgs/s ratio at small (64-byte) casts,
// where per-message overhead dominates payload cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "horus/util/hotpath_stats.hpp"

using namespace horus;
using namespace horus::bench;

namespace {

constexpr std::size_t kCastBytes = 64;
constexpr int kBurst = 64;  // casts issued per iteration before settling

/// Burst-cast throughput for one stack: issue kBurst casts, run the sim
/// until the last member delivered all of them, repeat.
void burst_throughput(benchmark::State& state, const char* spec,
                      bool batch_api) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  HorusSystem::Options opts = Rig::fast_net();
  // Size the packing knobs to the burst: tell the stack the transport's
  // real (large, simulated-LAN) MTU so the auto byte budget does not
  // pre-split trains at 1400-byte Ethernet size, and let whole bursts
  // ride one train (the default cap of 16 is tuned for latency under
  // mixed traffic, not burst throughput).
  opts.stack.mtu = static_cast<std::size_t>(opts.net.mtu);
  opts.stack.packing.max_count = kBurst;
  Rig rig(spec, n, opts);
  Bytes payload(kCastBytes, 0x61);
  std::uint64_t sent = 0;
  std::uint64_t dg_before =
      rig.eps[0]->stack().stats().datagrams_sent.load();
  for (auto _ : state) {
    std::uint64_t want = rig.delivered[n - 1] + kBurst;
    if (batch_api) {
      std::vector<Message> msgs;
      msgs.reserve(kBurst);
      for (int i = 0; i < kBurst; ++i) {
        msgs.push_back(Message::from_payload(Bytes(payload)));
      }
      rig.eps[0]->cast_batch(kGroup, std::move(msgs));
    } else {
      for (int i = 0; i < kBurst; ++i) {
        rig.eps[0]->cast(kGroup, Message::from_payload(Bytes(payload)));
      }
    }
    for (int guard = 0; guard < 100'000 && rig.delivered[n - 1] < want;
         ++guard) {
      rig.sys.run_for(100);
    }
    sent += kBurst;
  }
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(sent), benchmark::Counter::kIsRate);
  state.counters["bytes/s"] = benchmark::Counter(
      static_cast<double>(sent * kCastBytes), benchmark::Counter::kIsRate);
  // Datagrams the sender actually put on the wire per cast: the packing
  // win in one number (1/trainsize vs. 1 with everything else equal).
  std::uint64_t dg =
      rig.eps[0]->stack().stats().datagrams_sent.load() - dg_before;
  state.counters["datagrams/cast"] =
      sent != 0 ? static_cast<double>(dg) / static_cast<double>(sent) : 0.0;
}

void BM_UnpackedSmallCasts(benchmark::State& state) {
  burst_throughput(state, "FRAG:NAK:COM", /*batch_api=*/false);
}
void BM_PackedSmallCasts(benchmark::State& state) {
  burst_throughput(state, "PACK:FRAG:NAK:COM", /*batch_api=*/false);
}
void BM_PackedSmallCastBatch(benchmark::State& state) {
  burst_throughput(state, "PACK:FRAG:NAK:COM", /*batch_api=*/true);
}
BENCHMARK(BM_UnpackedSmallCasts)->Arg(2)->Arg(4);
BENCHMARK(BM_PackedSmallCasts)->Arg(2)->Arg(4);
BENCHMARK(BM_PackedSmallCastBatch)->Arg(2)->Arg(4);

// The ordered stack: one ordering stamp per train instead of per cast.
void BM_UnpackedOrderedCasts(benchmark::State& state) {
  burst_throughput(state, "TOTAL:MBRSHIP:FRAG:NAK:COM", /*batch_api=*/false);
}
void BM_PackedOrderedCasts(benchmark::State& state) {
  burst_throughput(state, "PACK:TOTAL:MBRSHIP:FRAG:NAK:COM",
                   /*batch_api=*/false);
}
BENCHMARK(BM_UnpackedOrderedCasts)->Arg(2);
BENCHMARK(BM_PackedOrderedCasts)->Arg(2);

// The batched traversal alone (no PACK): transforms process the burst in
// one descent via down_batch instead of kBurst separate descents.
void BM_BatchedTransformDescent(benchmark::State& state) {
  burst_throughput(state, "ENCRYPT:CHKSUM:FRAG:NAK:COM", /*batch_api=*/true);
}
void BM_PerEventTransformDescent(benchmark::State& state) {
  burst_throughput(state, "ENCRYPT:CHKSUM:FRAG:NAK:COM", /*batch_api=*/false);
}
BENCHMARK(BM_BatchedTransformDescent)->Arg(2);
BENCHMARK(BM_PerEventTransformDescent)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Protocol accelerator: packing + batched send/delivery ===\n"
      "Arg = group size; casts are %zu bytes, issued in bursts of %d.\n"
      "The packed stacks coalesce each burst into count-capped trains, so\n"
      "one descent, one sequence number and one datagram carry many casts\n"
      "(datagrams/cast shows the wire-level win). The headline comparison\n"
      "is BM_PackedOrderedCasts vs BM_UnpackedOrderedCasts -- the paper's\n"
      "canonical TOTAL:MBRSHIP:FRAG:NAK:COM stack, where per-cast protocol\n"
      "work is largest: target >= 3x msgs/s at 64-byte casts. The light\n"
      "FRAG:NAK:COM rows isolate the wire/descent share of the win.\n\n",
      kCastBytes, kBurst);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
