// Real-wire benchmarks for horus-net: casts through actual kernel UDP
// sockets on loopback (the EXPERIMENTS.md "real network" row) and the raw
// sendmmsg fan-out path in isolation.
//
//   * BM_NetCastThroughput: two NodeRuntime processes-in-one (two sockets,
//     two reactors, two sharded executors), a formed 2-member view, bursts
//     of casts pushed until both sides deliver. Reports msgs/s end to end
//     and datagrams/cast (wire cost of one multicast through
//     MBRSHIP:FRAG:NAK:COM, NAK gossip included).
//   * BM_UdpSendBatch: UdpTransport::send_batch to N destinations, no
//     stack -- what one sendmmsg burst costs vs N sendto calls.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "horus/net/runtime.hpp"

using namespace horus;
using namespace std::chrono_literals;

namespace {

std::uint16_t grab_port(std::vector<int>& hold) {
  int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  ::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  socklen_t len = sizeof(sa);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
  hold.push_back(fd);
  return ntohs(sa.sin_port);
}

std::string book_text(const std::vector<std::uint16_t>& ports) {
  std::string text;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    text += std::to_string(i + 1) + " 127.0.0.1:" + std::to_string(ports[i]) +
            "\n";
  }
  return text;
}

/// Two real nodes over loopback with a settled 2-member view. Expensive to
/// stand up (sockets + reactors + view formation), so one rig serves a
/// whole benchmark run.
struct TwoNodeRig {
  net::AddressBook book;
  std::unique_ptr<net::NodeRuntime> n1, n2;
  std::atomic<std::uint64_t> delivered1{0}, delivered2{0};
  GroupId gid{0xbe7c4};

  TwoNodeRig() {
    std::vector<int> hold;
    std::vector<std::uint16_t> ports = {grab_port(hold), grab_port(hold)};
    for (int fd : hold) ::close(fd);
    book = net::AddressBook::parse(book_text(ports));
    net::NodeConfig cfg;
    n1 = std::make_unique<net::NodeRuntime>(book, Address{1}, cfg);
    n2 = std::make_unique<net::NodeRuntime>(book, Address{2}, cfg);
    n1->endpoint().on_upcall([this](Group&, UpEvent& ev) {
      if (ev.type == UpType::kCast) ++delivered1;
    });
    n2->endpoint().on_upcall([this](Group&, UpEvent& ev) {
      if (ev.type == UpType::kCast) ++delivered2;
    });
    n1->endpoint().join(gid);
    n2->endpoint().join(gid, Address{1});
    // Pump both nodes until the 2-member view has settled everywhere.
    for (int i = 0; i < 500; ++i) {
      pump(10ms);
      auto* g1 = n1->endpoint().find_group(gid);
      auto* g2 = n2->endpoint().find_group(gid);
      if (g1 && g2 && g1->view().size() == 2 && g2->view().size() == 2) break;
    }
  }
  ~TwoNodeRig() {
    n1->shutdown();
    n2->shutdown();
  }

  void pump(std::chrono::milliseconds total) {
    auto end = std::chrono::steady_clock::now() + total;
    while (std::chrono::steady_clock::now() < end) {
      n1->run_for(5ms);
      n2->run_for(5ms);
    }
  }
};

void BM_NetCastThroughput(benchmark::State& state) {
  static TwoNodeRig* rig = new TwoNodeRig();  // shared across runs
  const std::size_t payload = static_cast<std::size_t>(state.range(0));
  const int kBurst = 16;
  Message msg = Message::from_payload(Bytes(payload, 0x42));
  std::uint64_t casts = 0;
  std::uint64_t tx0 = rig->n1->udp().stats().tx_datagrams.load();
  for (auto _ : state) {
    std::uint64_t want1 = rig->delivered1.load() + kBurst;
    std::uint64_t want2 = rig->delivered2.load() + kBurst;
    for (int i = 0; i < kBurst; ++i) rig->n1->endpoint().cast(rig->gid, msg);
    while (rig->delivered1.load() < want1 || rig->delivered2.load() < want2) {
      rig->pump(1ms);
    }
    casts += kBurst;
  }
  std::uint64_t tx = rig->n1->udp().stats().tx_datagrams.load() - tx0;
  state.SetItemsProcessed(static_cast<std::int64_t>(casts));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(casts), benchmark::Counter::kIsRate);
  state.counters["datagrams/cast"] = benchmark::Counter(
      casts ? static_cast<double>(tx) / static_cast<double>(casts) : 0);
}
BENCHMARK(BM_NetCastThroughput)->Arg(64)->Arg(1024)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

void BM_UdpSendBatch(benchmark::State& state) {
  // Destinations are real bound sockets nobody reads: the kernel accepts
  // the datagrams and drops them when the buffers fill, so this times the
  // tx path alone.
  const int ndst = static_cast<int>(state.range(0));
  std::vector<int> hold;
  std::vector<std::uint16_t> ports;
  ports.push_back(grab_port(hold));  // self
  for (int i = 0; i < ndst; ++i) ports.push_back(grab_port(hold));
  ::close(hold[0]);  // free the self port for the transport to bind
  hold.erase(hold.begin());
  net::AddressBook book = net::AddressBook::parse(book_text(ports));
  net::UdpTransport udp(book, Address{1});
  std::vector<Address> dsts;
  for (int i = 0; i < ndst; ++i) dsts.push_back(Address{2 + static_cast<std::uint64_t>(i)});
  Bytes payload(256, 0x55);
  for (auto _ : state) {
    udp.send_batch(Address{1}, dsts, payload);
  }
  for (int fd : hold) ::close(fd);
  state.SetItemsProcessed(state.iterations() * ndst);
  state.counters["datagrams/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * ndst),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UdpSendBatch)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== horus-net: real UDP over loopback ===\n"
      "BM_NetCastThroughput: 2 NodeRuntimes (MBRSHIP:FRAG:NAK:COM), bursts\n"
      "of 16 casts, measured cast->deliver on both nodes through kernel\n"
      "sockets; Arg = payload bytes. datagrams/cast is the wire cost of a\n"
      "2-member multicast including NAK/MBRSHIP gossip.\n"
      "BM_UdpSendBatch: raw sendmmsg fan-out, Arg = destinations.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
