// Endpoint lifecycle mechanics: group creation, destroy/crash semantics,
// multiple concurrent groups, handler behaviour.
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

HorusSystem::Options quiet() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  return o;
}

TEST(Endpoint, AddressesAreUniqueAndStable) {
  HorusSystem sys;
  auto& a = sys.create_endpoint("COM");
  auto& b = sys.create_endpoint("COM");
  EXPECT_NE(a.address(), b.address());
  EXPECT_TRUE(a.address().valid());
}

TEST(Endpoint, FindGroupOnlyAfterJoin) {
  HorusSystem sys;
  auto& a = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  EXPECT_EQ(a.find_group(kGroup), nullptr);
  EXPECT_THROW(a.group(kGroup), std::out_of_range);
  a.join(kGroup);
  EXPECT_NE(a.find_group(kGroup), nullptr);
  EXPECT_EQ(a.group(kGroup).gid(), kGroup);
}

TEST(Endpoint, DowncallsOnUnjoinedGroupAreNoOps) {
  HorusSystem sys(quiet());
  auto& a = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  // None of these may crash or create state.
  a.cast(kGroup, Message::from_string("x"));
  a.leave(kGroup);
  a.flush(kGroup, {});
  a.ack(kGroup, a.address(), 1);
  sys.run_for(100 * sim::kMillisecond);
  EXPECT_EQ(a.find_group(kGroup), nullptr);
}

TEST(Endpoint, DestroyStopsAllActivity) {
  World w(2, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  std::uint64_t events_before = w.sys.net().stats().sent;
  w.eps[0]->destroy();
  w.eps[1]->destroy();
  // Drain in-flight work, then confirm quiescence: no timers keep firing.
  w.sys.run_for(sim::kSecond);
  std::uint64_t mid = w.sys.net().stats().sent;
  w.sys.run_for(5 * sim::kSecond);
  EXPECT_EQ(w.sys.net().stats().sent, mid)
      << "destroyed endpoints are still transmitting";
  (void)events_before;
}

TEST(Endpoint, CrashedEndpointIgnoresDowncalls) {
  World w(2, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  w.sys.crash(*w.eps[0]);
  w.eps[0]->cast(kGroup, Message::from_string("ghost"));
  w.sys.run_for(2 * sim::kSecond);
  for (const auto& d : w.logs[1].casts) EXPECT_NE(d.payload, "ghost");
}

TEST(Endpoint, HandlerReplacementTakesEffect) {
  World w(2, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  int first = 0, second = 0;
  w.eps[1]->on_upcall([&](Group&, UpEvent& ev) {
    if (ev.type == UpType::kCast) ++first;
  });
  w.eps[0]->cast(kGroup, Message::from_string("1"));
  w.sys.run_for(sim::kSecond);
  w.eps[1]->on_upcall([&](Group&, UpEvent& ev) {
    if (ev.type == UpType::kCast) ++second;
  });
  w.eps[0]->cast(kGroup, Message::from_string("2"));
  w.sys.run_for(sim::kSecond);
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(Endpoint, ManyGroupsManyStacksCoexist) {
  HorusSystem sys(quiet());
  auto& a = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  // Five groups on one endpoint, all bootstrapped.
  for (std::uint64_t gid = 10; gid < 15; ++gid) {
    a.join(GroupId{gid});
  }
  sys.run_for(sim::kSecond);
  for (std::uint64_t gid = 10; gid < 15; ++gid) {
    ASSERT_NE(a.find_group(GroupId{gid}), nullptr) << gid;
    EXPECT_EQ(a.group(GroupId{gid}).view().size(), 1u) << gid;
  }
}

TEST(Endpoint, InstallViewRequiresNoMembership) {
  HorusSystem sys(quiet());
  auto& a = sys.create_endpoint("NAK:COM");
  auto& b = sys.create_endpoint("NAK:COM");
  int got = 0;
  b.on_upcall([&](Group&, UpEvent& ev) {
    if (ev.type == UpType::kCast) ++got;
  });
  a.join(kGroup);
  b.join(kGroup);
  a.install_view(kGroup, {a.address(), b.address()});
  b.install_view(kGroup, {a.address(), b.address()});
  sys.run_for(10 * sim::kMillisecond);
  a.cast(kGroup, Message::from_string("direct"));
  sys.run_for(sim::kSecond);
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace horus::testing
