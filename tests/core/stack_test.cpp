// Stack composition mechanics: run-time assembly from spec strings,
// well-formedness enforcement at creation, header codecs (classic word-
// aligned push/pop vs the Section 10 compacted region), the no-op-layer
// skip tables, stats and diagnostics (focus/dump).
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

TEST(StackBuild, IllFormedStackThrowsAtCreation) {
  HorusSystem sys;
  // FRAG directly over COM: FRAG's FIFO requirement is unsatisfied. The
  // error must be raised when the endpoint is created, not at runtime.
  EXPECT_THROW(sys.create_endpoint("FRAG:COM"), std::invalid_argument);
}

TEST(StackBuild, UnknownLayerNameThrows) {
  HorusSystem sys;
  EXPECT_THROW(sys.create_endpoint("NOSUCH:COM"), std::invalid_argument);
}

TEST(StackBuild, TransportMustBeBottom) {
  HorusSystem sys;
  EXPECT_THROW(sys.create_endpoint("COM:NAK"), std::invalid_argument);
  EXPECT_THROW(sys.create_endpoint("NAK"), std::invalid_argument);
}

TEST(StackBuild, EmptySpecThrows) {
  HorusSystem sys;
  EXPECT_THROW(sys.create_endpoint(""), std::invalid_argument);
}

TEST(StackBuild, ProvidedPropertiesExposed) {
  HorusSystem sys;
  auto& ep = sys.create_endpoint("TOTAL:MBRSHIP:FRAG:NAK:COM");
  props::PropertySet p = ep.stack().provided_properties();
  EXPECT_TRUE(props::has(p, props::Property::kTotalOrder));
  EXPECT_TRUE(props::has(p, props::Property::kVirtualSync));
  EXPECT_FALSE(props::has(p, props::Property::kBestEffort));
}

TEST(StackBuild, FindLayerByName) {
  HorusSystem sys;
  auto& ep = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  EXPECT_NE(ep.stack().find_layer("FRAG"), nullptr);
  EXPECT_NE(ep.stack().find_layer("COM"), nullptr);
  EXPECT_EQ(ep.stack().find_layer("TOTAL"), nullptr);
}

TEST(StackBuild, RegionBytesZeroInClassicMode) {
  HorusSystem sys;
  auto& ep = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  EXPECT_EQ(ep.stack().region_bytes(), 0u);
}

TEST(StackBuild, RegionBytesCompactedInCompactMode) {
  HorusSystem::Options opts;
  opts.stack.codec = HeaderCodec::kCompact;
  HorusSystem sys(opts);
  auto& ep = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  // MBRSHIP(4+32+32) + FRAG(1+1) + NAK(3+1+32+32) + COM(64+1) bits; the
  // group id is endpoint-level framing, not a COM field.
  std::size_t bits = (4 + 32 + 32) + (1 + 1) + (3 + 1 + 32 + 32) + (64 + 1);
  EXPECT_EQ(ep.stack().region_bytes(), (bits + 7) / 8);
}

// Both codecs must interoperate end to end (same stack on both sides).
class CodecTest : public ::testing::TestWithParam<HeaderCodec> {};

TEST_P(CodecTest, FullStackDelivery) {
  HorusSystem::Options opts;
  opts.stack.codec = GetParam();
  World w(3, "TOTAL:MBRSHIP:FRAG:NAK:COM", opts);
  w.form_group();
  ASSERT_TRUE(w.converged());
  for (int i = 0; i < 5; ++i) {
    w.eps[static_cast<std::size_t>(i % 3)]->cast(
        kGroup, Message::from_string("m" + std::to_string(i)));
  }
  w.sys.run_for(3 * sim::kSecond);
  auto ref = w.logs[0].all_cast_payloads();
  EXPECT_EQ(ref.size(), 5u);
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(w.logs[static_cast<std::size_t>(i)].all_cast_payloads(), ref);
  }
}

TEST_P(CodecTest, CompactSavesWireBytes) {
  if (GetParam() != HeaderCodec::kCompact) GTEST_SKIP();
  // Measure header bytes per datagram under both codecs for an identical
  // workload; the compacted region must be smaller (Section 10, fix 3).
  auto run = [](HeaderCodec codec) {
    HorusSystem::Options opts;
    opts.stack.codec = codec;
    opts.net.loss = 0.0;
    World w(2, "MBRSHIP:FRAG:NAK:COM", opts);
    w.form_group();
    w.eps[0]->stack().reset_stats();
    for (int i = 0; i < 50; ++i) {
      w.eps[0]->cast(kGroup, Message::from_string("0123456789"));
    }
    w.sys.run_for(sim::kSecond);
    const StackStats& s = w.eps[0]->stack().stats();
    return static_cast<double>(s.header_bytes_sent) /
           static_cast<double>(s.datagrams_sent);
  };
  double classic = run(HeaderCodec::kPushPop);
  double compact = run(HeaderCodec::kCompact);
  EXPECT_LT(compact, classic)
      << "compacted headers should use fewer bytes per datagram";
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecTest,
                         ::testing::Values(HeaderCodec::kPushPop,
                                           HeaderCodec::kCompact),
                         [](const auto& info) {
                           return info.param == HeaderCodec::kPushPop
                                      ? "PushPop"
                                      : "Compact";
                         });

TEST(StackSkip, NopLayersAreSkippedOnDataPath) {
  // A tower of NOP layers must not change behaviour; with skipping enabled
  // the data path jumps straight across them.
  HorusSystem::Options opts;
  opts.net.loss = 0.0;
  World w(2, "NOP:NOP:NOP:MBRSHIP:FRAG:NAK:COM", opts);
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.eps[0]->cast(kGroup, Message::from_string("through the nops"));
  w.sys.run_for(sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "through the nops");
}

TEST(StackSkip, DisabledSkippingStillCorrect) {
  HorusSystem::Options opts;
  opts.net.loss = 0.0;
  opts.stack.skip_noop_layers = false;
  World w(2, "NOP:PASS:MBRSHIP:FRAG:NAK:COM", opts);
  w.form_group();
  w.eps[0]->cast(kGroup, Message::from_string("slow path"));
  w.sys.run_for(sim::kSecond);
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()).size(), 1u);
}

TEST(StackStats, CountsTraffic) {
  HorusSystem::Options opts;
  opts.net.loss = 0.0;
  World w(2, "MBRSHIP:FRAG:NAK:COM", opts);
  w.form_group();
  const StackStats& s = w.eps[0]->stack().stats();
  EXPECT_GT(s.datagrams_sent, 0u);
  EXPECT_GT(s.datagrams_received, 0u);
  EXPECT_GT(s.wire_bytes_sent, 0u);
  EXPECT_GT(s.upcalls_to_app, 0u);  // at least the VIEW upcalls
}

TEST(StackDump, FocusAndDumpReportLayerState) {
  World w(2, "MBRSHIP:FRAG:NAK:COM");
  w.form_group();
  std::string all = w.eps[0]->dump(kGroup, "");
  EXPECT_NE(all.find("MBRSHIP:"), std::string::npos);
  EXPECT_NE(all.find("NAK:"), std::string::npos);
  std::string one = w.eps[0]->dump(kGroup, "FRAG");
  EXPECT_NE(one.find("FRAG:"), std::string::npos);
  EXPECT_EQ(one.find("NAK:"), std::string::npos);
  EXPECT_NE(w.eps[0]->dump(kGroup, "BOGUS").find("no such layer"),
            std::string::npos);
}

TEST(StackMulti, TwoGroupsOneEndpointIsolated) {
  // "A single layer may be used concurrently by many groups ... each
  // instance has its own state."
  HorusSystem::Options opts;
  opts.net.loss = 0.0;
  World w(2, "MBRSHIP:FRAG:NAK:COM", opts);
  GroupId g1{42}, g2{77};
  w.eps[0]->join(g1);
  w.eps[0]->join(g2);
  w.sys.run_for(100 * sim::kMillisecond);
  w.eps[1]->join(g1, w.eps[0]->address());
  w.eps[1]->join(g2, w.eps[0]->address());
  w.sys.run_for(2 * sim::kSecond);
  std::vector<std::pair<std::uint64_t, std::string>> got;
  w.eps[1]->on_upcall([&](Group& g, UpEvent& ev) {
    if (ev.type == UpType::kCast) got.emplace_back(g.gid().id, ev.msg.payload_string());
  });
  w.eps[0]->cast(g1, Message::from_string("to-g1"));
  w.eps[0]->cast(g2, Message::from_string("to-g2"));
  w.sys.run_for(sim::kSecond);
  ASSERT_EQ(got.size(), 2u);
  for (auto& [gid, payload] : got) {
    if (gid == 42) EXPECT_EQ(payload, "to-g1");
    if (gid == 77) EXPECT_EQ(payload, "to-g2");
  }
}

TEST(StackMulti, MismatchedPeerStacksFailSafe) {
  // Two members of one group running INCOMPATIBLE stacks (a deployment
  // mistake): frames misparse and are dropped -- no crash, no garbled
  // delivery to the application.
  HorusSystem::Options opts;
  opts.net.loss = 0.0;
  HorusSystem sys(opts);
  auto& a = sys.create_endpoint("FRAG:NAK:COM");
  auto& b = sys.create_endpoint("NAK:COM");  // missing FRAG: wrong pops
  AppLog lb;
  lb.attach(b);
  std::vector<Address> members = {a.address(), b.address()};
  for (Endpoint* ep : {&a, &b}) {
    ep->join(kGroup);
    ep->install_view(kGroup, members);
  }
  sys.run_for(10 * sim::kMillisecond);
  for (int i = 0; i < 20; ++i) {
    a.cast(kGroup, Message::from_string("structured-payload"));
  }
  sys.run_for(3 * sim::kSecond);
  // Whatever b interpreted, nothing may look like a clean delivery of a
  // message IT could not have parsed correctly -- and nothing crashed.
  for (const auto& d : lb.casts) {
    // b's NAK pops 16 bytes that were really FRAG+payload bytes; the
    // payload it reconstructs cannot equal the original.
    EXPECT_NE(d.payload, "structured-payload");
  }
  SUCCEED();
}

TEST(StackMulti, DifferentStacksInterope) {
  // Two endpoints can run different (wire-compatible) upper layers as long
  // as the shared lower stack matches... here both run identical stacks
  // but with an extra NOP on one side, which adds no header.
  HorusSystem::Options opts;
  opts.net.loss = 0.0;
  HorusSystem sys(opts);
  auto& a = sys.create_endpoint("NOP:MBRSHIP:FRAG:NAK:COM");
  auto& b = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  AppLog la, lb;
  la.attach(a);
  lb.attach(b);
  a.join(kGroup);
  sys.run_for(100 * sim::kMillisecond);
  b.join(kGroup, a.address());
  sys.run_for(2 * sim::kSecond);
  ASSERT_FALSE(lb.views.empty());
  a.cast(kGroup, Message::from_string("mixed"));
  sys.run_for(sim::kSecond);
  EXPECT_EQ(lb.casts_from(a.address()).size(), 1u);
}

}  // namespace
}  // namespace horus::testing
