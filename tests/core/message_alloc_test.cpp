// The zero-allocation hot path (ISSUE: headroom wire buffers).
//
// Two levels of proof:
//  1. A strict loop over the builder primitives (pool acquire -> make_linear
//     -> prepend/Writer -> finalize_wire -> release) under a counting global
//     operator new: steady state performs literally zero heap allocations.
//  2. An endpoint-level steady-state cast over FRAG:NAK:COM asserting the
//     hot-path counters: every frame takes the in-place fast path, every
//     buffer is a pool hit, and no Writer ever spills to the heap.
#define HORUS_TEST_COUNT_ALLOCS
#include "../common/test_util.hpp"

#include <gtest/gtest.h>

#include "horus/core/message.hpp"
#include "horus/core/wirebuf.hpp"
#include "horus/util/hotpath_stats.hpp"
#include "horus/util/serialize.hpp"

namespace horus {
namespace {

using testing::AllocCounter;
using testing::World;
using testing::kGroup;

TEST(MessageAlloc, BuilderSteadyStateAllocatesNothing) {
  constexpr std::size_t kCap = 512;
  constexpr std::size_t kTailroom = 4;
  WireBufPool pool(kCap);
  Bytes payload = to_bytes("steady-state cast payload");

  auto one_cast = [&] {
    WireBufRef wb = pool.acquire(kCap);
    Message m = Message::make_linear(std::move(wb), 0, kTailroom,
                                     ByteSpan(payload));
    // What Stack::push_header does per layer: exact-size prepend + external
    // Writer serializing in place.
    MutByteSpan h = m.prepend(12);
    Writer w(h);
    w.u32(7);
    w.u32(1234);
    w.u32(0xdeadbeef);
    MutByteSpan frame = m.finalize_wire(42, 0, kTailroom);
    ASSERT_NE(frame.data(), nullptr);
    ASSERT_TRUE(w.external());  // never spilled
    // Message destruction releases the buffer back to the pool.
  };

  // Warm-up: allocates the pooled buffer and the free list's capacity.
  for (int i = 0; i < 4; ++i) one_cast();
  ASSERT_GE(pool.free_count(), 1u);

  AllocCounter c;
  for (int i = 0; i < 1000; ++i) one_cast();
  EXPECT_EQ(c.allocations(), 0u)
      << "the builder hot path must not touch the heap";
}

TEST(MessageAlloc, BuilderCowAndGrowthDoAllocate) {
  // Sanity-check that the counter actually counts: the slow paths (clone on
  // shared buffer, headroom growth) do hit the heap.
  WireBufPool pool(64);
  Message a = Message::from_string("p");
  ASSERT_TRUE(a.linearize(pool.acquire(64), 0, 0));
  Message b = a;
  AllocCounter c;
  b.push_block(to_bytes("X"));  // copy-on-write clone
  EXPECT_GT(c.allocations(), 0u);
}

TEST(MessageAlloc, SteadyStateCastOverFragNakCom) {
  // No MBRSHIP in this stack: install a static view directly.
  World w(3, "FRAG:NAK:COM");
  std::vector<Address> all;
  for (auto* ep : w.eps) {
    ep->join(kGroup);
    all.push_back(ep->address());
  }
  for (auto* ep : w.eps) ep->install_view(kGroup, all);
  w.sys.run_for(10 * sim::kMillisecond);

  // Warm-up: first casts populate each stack's buffer pool (counted as
  // pool misses) and let NAK's periodic status traffic reach steady state.
  for (int i = 0; i < 30; ++i) {
    w.eps[static_cast<std::size_t>(i) % 3]->cast(
        kGroup, Message::from_string("warmup" + std::to_string(i)));
    w.sys.run_for(5 * sim::kMillisecond);
  }
  w.sys.run_for(sim::kSecond);

  auto& s = msg_path_stats();
  s.reset();
  constexpr int kCasts = 120;
  for (int i = 0; i < kCasts; ++i) {
    w.eps[static_cast<std::size_t>(i) % 3]->cast(
        kGroup, Message::from_string("steady" + std::to_string(i)));
    w.sys.run_for(5 * sim::kMillisecond);
  }
  w.sys.run_for(sim::kSecond);

  EXPECT_EQ(s.pool_misses.load(), 0u) << "every buffer must be a pool hit";
  EXPECT_EQ(s.writer_spills.load(), 0u) << "no Writer may spill to the heap";
  EXPECT_EQ(s.headroom_growths.load(), 0u) << "headroom budget must hold";
  EXPECT_EQ(s.wire_gather.load(), 0u) << "no frame may take the gather path";
  EXPECT_GE(s.wire_fastpath.load(), static_cast<std::uint64_t>(kCasts));
  EXPECT_GT(s.pool_hits.load(), 0u);

  // And the casts actually arrived, on every member.
  for (int m = 0; m < 3; ++m) {
    EXPECT_GE(w.logs[static_cast<std::size_t>(m)].casts.size(),
              static_cast<std::size_t>(kCasts));
  }
}

}  // namespace
}  // namespace horus
