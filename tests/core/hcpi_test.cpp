// The Horus Common Protocol Interface vocabulary: every downcall of
// Table 1 and every upcall of Table 2 must exist, carry the paper's
// wording, and round-trip through the event structs.
#include <gtest/gtest.h>

#include <set>

#include "horus/core/events.hpp"

namespace horus {
namespace {

TEST(Hcpi, Table1DowncallsComplete) {
  // The fifteen downcalls of Table 1, plus the live-reconfiguration
  // extension (docs/reconfig.md): switch the group's stack at run time.
  const auto& all = all_downcalls();
  EXPECT_EQ(all.size(), 16u);
  std::set<std::string> names;
  for (DownType t : all) names.insert(to_string(t));
  for (const char* expected :
       {"endpoint-implied", "join", "merge", "merge_denied", "merge_granted",
        "view", "cast", "send", "ack", "stable", "leave", "flush", "flush_ok",
        "destroy", "focus", "dump", "reconfig"}) {
    if (std::string(expected) == "endpoint-implied") continue;  // ctor, not enum
    EXPECT_TRUE(names.contains(expected)) << expected;
  }
}

TEST(Hcpi, Table2UpcallsComplete) {
  const auto& all = all_upcalls();
  EXPECT_EQ(all.size(), 14u);
  std::set<std::string> names;
  for (UpType t : all) names.insert(to_string(t));
  for (const char* expected :
       {"MERGE_REQUEST", "MERGE_DENIED", "FLUSH", "FLUSH_OK", "VIEW", "CAST",
        "SEND", "LEAVE", "DESTROY", "LOST_MESSAGE", "STABLE", "PROBLEM",
        "SYSTEM_ERROR", "EXIT"}) {
    EXPECT_TRUE(names.contains(expected)) << expected;
  }
}

TEST(Hcpi, DescriptionsMatchPaperTables) {
  EXPECT_STREQ(describe(DownType::kJoin), "join group and return handle");
  EXPECT_STREQ(describe(DownType::kCast), "multicast a message");
  EXPECT_STREQ(describe(DownType::kSend), "send message to subset");
  EXPECT_STREQ(describe(DownType::kAck), "acknowledge a message");
  EXPECT_STREQ(describe(DownType::kFlush), "remove members and flush");
  EXPECT_STREQ(describe(UpType::kCast), "received multicast message");
  EXPECT_STREQ(describe(UpType::kStable), "stability update");
  EXPECT_STREQ(describe(UpType::kLostMessage), "message was lost");
  EXPECT_STREQ(describe(UpType::kProblem), "communication problem");
}

TEST(Hcpi, EveryCallHasNameAndDescription) {
  for (DownType t : all_downcalls()) {
    EXPECT_STRNE(to_string(t), "?");
    EXPECT_STRNE(describe(t), "?");
  }
  for (UpType t : all_upcalls()) {
    EXPECT_STRNE(to_string(t), "?");
    EXPECT_STRNE(describe(t), "?");
  }
}

TEST(Hcpi, StabilityMatrixStablePrefix) {
  StabilityMatrix sm;
  sm.view = View(ViewId{1, Address{1}}, {Address{1}, Address{2}, Address{3}});
  sm.acked = {{5, 2, 9}, {4, 3, 9}, {6, 2, 8}};
  auto prefix = sm.stable_prefix();
  ASSERT_EQ(prefix.size(), 3u);
  EXPECT_EQ(prefix[0], 4u);  // min of column 0
  EXPECT_EQ(prefix[1], 2u);
  EXPECT_EQ(prefix[2], 8u);
}

TEST(Hcpi, StabilityMatrixEmpty) {
  StabilityMatrix sm;
  sm.view = View(ViewId{1, Address{1}}, {Address{1}});
  auto prefix = sm.stable_prefix();
  ASSERT_EQ(prefix.size(), 1u);
  EXPECT_EQ(prefix[0], 0u);
}

TEST(Hcpi, StabilityMatrixRaggedRowsTreatedAsZero) {
  StabilityMatrix sm;
  sm.view = View(ViewId{1, Address{1}}, {Address{1}, Address{2}});
  sm.acked = {{7}};  // row shorter than the view
  auto prefix = sm.stable_prefix();
  EXPECT_EQ(prefix[0], 7u);
  EXPECT_EQ(prefix[1], 0u);
}

TEST(Hcpi, EventStructsDefaultSane) {
  UpEvent up;
  EXPECT_EQ(up.type, UpType::kCast);
  EXPECT_FALSE(up.source.valid());
  DownEvent down;
  EXPECT_EQ(down.type, DownType::kCast);
  EXPECT_TRUE(down.dests.empty());
}

}  // namespace
}  // namespace horus
