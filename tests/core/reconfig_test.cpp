// Live protocol switching (epoch-versioned stacks): coordinated
// reconfiguration rides a membership flush, property-illegal transitions
// are rejected with a delta, old-epoch stragglers drain through shadow
// chains, and membership-less stacks switch locally.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "../common/test_util.hpp"
#include "horus/util/hotpath_stats.hpp"

namespace horus::testing {
namespace {

constexpr const char* kNakSpec = "TOTAL:MBRSHIP:FRAG:NAK:COM";
constexpr const char* kMcastSpec = "TOTAL:MBRSHIP:FRAG:MCAST:NNAK:COM";
constexpr const char* kCompressSpec = "TOTAL:MBRSHIP:FRAG:NAK:COMPRESS:COM";

void cast_str(Endpoint& ep, const std::string& s) {
  ep.cast(kGroup, Message::from_string(s));
}

/// Every member must have delivered exactly `want` from `src`, in order.
void expect_casts(const World& w, Address src,
                  const std::vector<std::string>& want) {
  for (std::size_t i = 0; i < w.logs.size(); ++i) {
    EXPECT_EQ(w.logs[i].casts_from(src), want)
        << "member " << i << " disagrees on casts from " << to_string(src);
  }
}

// The ISSUE's canonical live switch: NAK -> MCAST:NNAK under a full
// TOTAL:MBRSHIP stack, with application casts in flight before, during and
// after the flush. Zero loss, duplication or reordering per sender.
TEST(Reconfig, NakToMcastNnakLiveSwitch) {
  auto& stats = msg_path_stats();
  std::uint64_t completed0 = stats.reconfigs_completed.load();

  World w(3, kNakSpec);
  w.form_group();
  ASSERT_TRUE(w.converged());

  for (std::size_t i = 0; i < 3; ++i) {
    cast_str(*w.eps[i], "pre-" + std::to_string(i) + "-a");
    cast_str(*w.eps[i], "pre-" + std::to_string(i) + "-b");
  }
  w.sys.run_for(sim::kSecond);

  // Switch initiated by a non-coordinator member: the request is relayed
  // to the coordinator, which starts the flush the switch rides.
  w.eps[2]->reconfigure(kGroup, kMcastSpec);
  // In-flight traffic: cast while the flush is (or is about to be) running.
  for (std::size_t i = 0; i < 3; ++i) {
    cast_str(*w.eps[i], "mid-" + std::to_string(i));
  }
  w.sys.run_for(3 * sim::kSecond);

  for (std::size_t i = 0; i < 3; ++i) {
    cast_str(*w.eps[i], "post-" + std::to_string(i));
  }
  w.sys.run_for(2 * sim::kSecond);

  // Every member switched: epoch 1, new chain, view intact.
  for (std::size_t i = 0; i < 3; ++i) {
    Group& g = w.eps[i]->group(kGroup);
    EXPECT_EQ(g.epoch_number(), 1u) << "member " << i;
    EXPECT_EQ(g.stack().spec_string(), kMcastSpec) << "member " << i;
    ASSERT_FALSE(w.logs[i].views.empty());
    EXPECT_EQ(w.logs[i].views.back().size(), 3u);
    EXPECT_TRUE(w.logs[i].lost.empty()) << "member " << i;
  }
  EXPECT_GE(stats.reconfigs_completed.load(), completed0 + 3);

  // No app message lost, duplicated or reordered across the epoch
  // boundary, at any member, for any sender.
  for (std::size_t s = 0; s < 3; ++s) {
    std::vector<std::string> want = {
        "pre-" + std::to_string(s) + "-a", "pre-" + std::to_string(s) + "-b",
        "mid-" + std::to_string(s), "post-" + std::to_string(s)};
    expect_casts(w, w.eps[s]->address(), want);
  }
  // TOTAL still totally orders across the switch: all members agree on the
  // full interleaving, not just per-sender order.
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(w.logs[i].all_cast_payloads(), w.logs[0].all_cast_payloads());
  }
  // The coordinated switch moved MBRSHIP state into the new epoch.
  EXPECT_GT(stats.state_transfers.load(), 0u);
}

// +COMPRESS then -COMPRESS: two successive coordinated switches; epoch
// counts up and traffic flows in every epoch.
TEST(Reconfig, CompressInAndOut) {
  World w(3, kNakSpec);
  w.form_group();
  ASSERT_TRUE(w.converged());

  cast_str(*w.eps[0], "plain-1");
  w.sys.run_for(sim::kSecond);

  w.eps[0]->reconfigure(kGroup, kCompressSpec);
  w.sys.run_for(3 * sim::kSecond);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(w.eps[i]->group(kGroup).epoch_number(), 1u) << "member " << i;
    EXPECT_EQ(w.eps[i]->group(kGroup).stack().spec_string(), kCompressSpec);
  }
  cast_str(*w.eps[1], "squeezed-1");
  w.sys.run_for(sim::kSecond);

  w.eps[0]->reconfigure(kGroup, kNakSpec);
  w.sys.run_for(3 * sim::kSecond);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(w.eps[i]->group(kGroup).epoch_number(), 2u) << "member " << i;
    EXPECT_EQ(w.eps[i]->group(kGroup).stack().spec_string(), kNakSpec);
  }
  cast_str(*w.eps[2], "plain-2");
  w.sys.run_for(sim::kSecond);

  expect_casts(w, w.eps[0]->address(), {"plain-1"});
  expect_casts(w, w.eps[1]->address(), {"squeezed-1"});
  expect_casts(w, w.eps[2]->address(), {"plain-2"});
}

// Dropping TOTAL while the application (by default) requires everything the
// join-time stack provided is illegal: reconfigure throws with the property
// delta, counts a rejection, and the group is untouched and still works.
TEST(Reconfig, IllegalTransitionRejected) {
  auto& stats = msg_path_stats();
  std::uint64_t rejected0 = stats.reconfigs_rejected.load();

  World w(2, kNakSpec);
  w.form_group();
  ASSERT_TRUE(w.converged());

  try {
    w.eps[0]->reconfigure(kGroup, "MBRSHIP:FRAG:NAK:COM");
    FAIL() << "illegal transition was not rejected";
  } catch (const std::invalid_argument& e) {
    // The error carries the property delta: P6 (total order) is lost.
    EXPECT_NE(std::string(e.what()).find("P6"), std::string::npos) << e.what();
  }
  EXPECT_GT(stats.reconfigs_rejected.load(), rejected0);

  w.sys.run_for(sim::kSecond);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(w.eps[i]->group(kGroup).epoch_number(), 0u);
    EXPECT_EQ(w.eps[i]->group(kGroup).stack().spec_string(), kNakSpec);
  }
  cast_str(*w.eps[0], "still-works");
  w.sys.run_for(sim::kSecond);
  expect_casts(w, w.eps[0]->address(), {"still-works"});
}

// check_reconfig is a pure dry run: it reports the same verdicts
// reconfigure() would apply but never changes the group.
TEST(Reconfig, CheckReconfigDryRun) {
  World w(2, kNakSpec);
  w.form_group();
  ASSERT_TRUE(w.converged());

  props::TransitionCheck legal = w.eps[0]->check_reconfig(kGroup, kMcastSpec);
  EXPECT_TRUE(legal.legal) << legal.error;
  EXPECT_EQ(legal.lost, 0u);
  // MCAST:NNAK strengthens the stack: plain best-effort unicast appears.
  EXPECT_NE(legal.gained, 0u);

  props::TransitionCheck drops =
      w.eps[0]->check_reconfig(kGroup, "MBRSHIP:FRAG:NAK:COM");
  EXPECT_FALSE(drops.legal);
  EXPECT_NE(drops.lost, 0u);
  EXPECT_NE(drops.error.find("P6"), std::string::npos) << drops.error;

  // Structural rule: the chain at and above the reconfiguration
  // coordinator must be unchanged, even if properties only grow.
  World plain(2, "MBRSHIP:FRAG:NAK:COM");
  plain.form_group();
  ASSERT_TRUE(plain.converged());
  props::TransitionCheck structural =
      plain.eps[0]->check_reconfig(kGroup, kNakSpec);
  EXPECT_FALSE(structural.legal);
  EXPECT_NE(structural.error.find("coordinator"), std::string::npos)
      << structural.error;

  // Nothing moved.
  EXPECT_EQ(w.eps[0]->group(kGroup).epoch_number(), 0u);
  EXPECT_EQ(plain.eps[0]->group(kGroup).epoch_number(), 0u);
}

// Unknown layer names in the target spec surface as a rejection (factory
// failure), not a crash, and count as rejected.
TEST(Reconfig, UnknownLayerRejected) {
  auto& stats = msg_path_stats();
  std::uint64_t rejected0 = stats.reconfigs_rejected.load();
  World w(2, kNakSpec);
  w.form_group();
  ASSERT_TRUE(w.converged());
  EXPECT_THROW(w.eps[0]->reconfigure(kGroup, "TOTAL:MBRSHIP:FRAG:NAQ:COM"),
               std::invalid_argument);
  EXPECT_GT(stats.reconfigs_rejected.load(), rejected0);
  EXPECT_EQ(w.eps[0]->group(kGroup).epoch_number(), 0u);
}

// Mixed-epoch delivery: after the group switches, an endpoint still running
// the OLD spec knocks with an epoch-0-stamped join request. That datagram
// routes to the permanent epoch-0 shadow (counted), whose superseded
// membership layer answers with the reconfiguration bundle; the joiner
// adopts the new (spec, epoch) and completes the join on the new chain.
TEST(Reconfig, OldSpecJoinerAdoptsNewEpoch) {
  auto& stats = msg_path_stats();

  World w(2, kNakSpec);
  w.form_group();
  ASSERT_TRUE(w.converged());

  w.eps[0]->reconfigure(kGroup, kMcastSpec);
  w.sys.run_for(3 * sim::kSecond);
  ASSERT_EQ(w.eps[0]->group(kGroup).epoch_number(), 1u);
  ASSERT_EQ(w.eps[1]->group(kGroup).epoch_number(), 1u);

  std::uint64_t shadow0 = stats.shadow_datagrams.load();

  // The latecomer was configured before the switch and never heard of it.
  Endpoint& late = w.sys.create_endpoint(kNakSpec);
  AppLog late_log;
  late_log.attach(late);
  late.join(kGroup, w.eps[0]->address());
  w.sys.run_for(5 * sim::kSecond);

  // Its old-epoch knock drained through the shadow chain...
  EXPECT_GT(stats.shadow_datagrams.load(), shadow0);
  // ...and it converged on the group's current spec and epoch.
  Group& lg = late.group(kGroup);
  EXPECT_EQ(lg.epoch_number(), 1u);
  EXPECT_EQ(lg.stack().spec_string(), kMcastSpec);
  ASSERT_FALSE(late_log.views.empty());
  EXPECT_EQ(late_log.views.back().size(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_FALSE(w.logs[i].views.empty());
    EXPECT_EQ(w.logs[i].views.back().size(), 3u) << "member " << i;
  }

  // Traffic flows between veterans and the adopted joiner.
  cast_str(*w.eps[0], "from-veteran");
  cast_str(late, "from-joiner");
  w.sys.run_for(2 * sim::kSecond);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(w.logs[i].casts_from(w.eps[0]->address()),
              std::vector<std::string>{"from-veteran"});
    EXPECT_EQ(w.logs[i].casts_from(late.address()),
              std::vector<std::string>{"from-joiner"});
  }
  EXPECT_EQ(late_log.casts_from(w.eps[0]->address()),
            std::vector<std::string>{"from-veteran"});
  EXPECT_EQ(late_log.casts_from(late.address()),
            std::vector<std::string>{"from-joiner"});
}

// A reconfiguration requested while a join-driven view change is already in
// motion: the switch rides (or queues behind) the flush machinery; everyone
// -- including the concurrent joiner -- lands on the new spec.
TEST(Reconfig, DuringConcurrentViewChange) {
  World w(3, kNakSpec);
  w.form_group();
  ASSERT_TRUE(w.converged());

  Endpoint& joiner = w.sys.create_endpoint(kNakSpec);
  AppLog jlog;
  jlog.attach(joiner);
  joiner.join(kGroup, w.eps[0]->address());
  // No run_for in between: the join and the switch race into the
  // membership layer together.
  w.eps[0]->reconfigure(kGroup, kMcastSpec);
  w.sys.run_for(6 * sim::kSecond);

  std::vector<Endpoint*> all = {w.eps[0], w.eps[1], w.eps[2], &joiner};
  for (std::size_t i = 0; i < all.size(); ++i) {
    Group& g = all[i]->group(kGroup);
    EXPECT_EQ(g.epoch_number(), 1u) << "endpoint " << i;
    EXPECT_EQ(g.stack().spec_string(), kMcastSpec) << "endpoint " << i;
  }
  ASSERT_FALSE(jlog.views.empty());
  EXPECT_EQ(jlog.views.back().size(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_FALSE(w.logs[i].views.empty());
    EXPECT_EQ(w.logs[i].views.back().size(), 4u) << "member " << i;
  }

  cast_str(*w.eps[1], "after-the-dust");
  w.sys.run_for(2 * sim::kSecond);
  expect_casts(w, w.eps[1]->address(), {"after-the-dust"});
  EXPECT_EQ(jlog.casts_from(w.eps[1]->address()),
            std::vector<std::string>{"after-the-dust"});
}

// Membership-less stacks (no MBRSHIP, views installed by hand) switch
// locally: each endpoint swaps its own epoch without coordination.
TEST(Reconfig, LocalSwitchWithoutMembership) {
  World w(2, "NNAK:COM");
  std::vector<Address> members;
  for (Endpoint* ep : w.eps) {
    ep->join(kGroup);
    members.push_back(ep->address());
  }
  for (Endpoint* ep : w.eps) ep->install_view(kGroup, members);
  w.sys.run_for(sim::kSecond);

  cast_str(*w.eps[0], "before");
  w.sys.run_for(sim::kSecond);

  // +COMPRESS below NNAK only adds properties: legal without relaxation.
  for (Endpoint* ep : w.eps) ep->reconfigure(kGroup, "NNAK:COMPRESS:COM");
  w.sys.run_for(sim::kSecond);
  for (std::size_t i = 0; i < 2; ++i) {
    Group& g = w.eps[i]->group(kGroup);
    EXPECT_EQ(g.epoch_number(), 1u) << "member " << i;
    EXPECT_EQ(g.stack().spec_string(), "NNAK:COMPRESS:COM") << "member " << i;
  }
  cast_str(*w.eps[1], "squeezed");
  w.sys.run_for(sim::kSecond);

  // NAK:COM masks best-effort unicast (P1), which the join-time stack
  // inherited -- so the app must first relax its requirement to FIFO
  // unicast (P3) for the switch to be legal.
  EXPECT_FALSE(w.eps[0]->check_reconfig(kGroup, "NAK:COM").legal);
  for (Endpoint* ep : w.eps) {
    ep->set_required(kGroup,
                     props::make_set({props::Property::kFifoUnicast}));
    ep->reconfigure(kGroup, "NAK:COM");
  }
  w.sys.run_for(sim::kSecond);
  for (std::size_t i = 0; i < 2; ++i) {
    Group& g = w.eps[i]->group(kGroup);
    EXPECT_EQ(g.epoch_number(), 2u) << "member " << i;
    EXPECT_EQ(g.stack().spec_string(), "NAK:COM") << "member " << i;
  }

  cast_str(*w.eps[0], "after");
  w.sys.run_for(sim::kSecond);
  expect_casts(w, w.eps[0]->address(), {"before", "after"});
  expect_casts(w, w.eps[1]->address(), {"squeezed"});
}

// The epoch-0 shadow is permanent (it is the rendezvous for old-spec
// peers), but intermediate epochs retire after their drain interval.
TEST(Reconfig, IntermediateShadowRetires) {
  auto& stats = msg_path_stats();
  std::uint64_t retired0 = stats.shadows_retired.load();

  World w(2, kNakSpec);
  w.form_group();
  ASSERT_TRUE(w.converged());

  w.eps[0]->reconfigure(kGroup, kCompressSpec);
  w.sys.run_for(3 * sim::kSecond);
  ASSERT_EQ(w.eps[0]->group(kGroup).epoch_number(), 1u);
  // Epoch 0 never retires: both members still hold {0, 1}.
  EXPECT_EQ(w.eps[0]->group(kGroup).epoch_count(), 2u);

  w.eps[0]->reconfigure(kGroup, kNakSpec);
  w.sys.run_for(3 * sim::kSecond);
  ASSERT_EQ(w.eps[0]->group(kGroup).epoch_number(), 2u);
  // Epoch 1's shadow drained and retired; {0, 2} remain.
  EXPECT_GT(stats.shadows_retired.load(), retired0);
  EXPECT_EQ(w.eps[0]->group(kGroup).epoch_count(), 2u);
  EXPECT_EQ(w.eps[1]->group(kGroup).epoch_count(), 2u);

  cast_str(*w.eps[0], "healthy");
  w.sys.run_for(sim::kSecond);
  expect_casts(w, w.eps[0]->address(), {"healthy"});
}

}  // namespace
}  // namespace horus::testing
