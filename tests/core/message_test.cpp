// The Horus message object: push/pop header stacking, zero-copy payload
// chains, wire round-trips, and the capture/reinjection path used by
// logging layers.
#include "horus/core/message.hpp"

#include <gtest/gtest.h>

#include "horus/core/wirebuf.hpp"
#include "horus/layers/common.hpp"
#include "horus/util/hotpath_stats.hpp"

namespace horus {
namespace {

TEST(Message, PayloadBasics) {
  Message m = Message::from_string("hello");
  EXPECT_FALSE(m.rx());
  EXPECT_EQ(m.payload_size(), 5u);
  EXPECT_EQ(m.payload_string(), "hello");
  EXPECT_EQ(m.header_overhead(), 0u);
}

TEST(Message, EmptyMessage) {
  Message m;
  EXPECT_EQ(m.payload_size(), 0u);
  EXPECT_TRUE(m.payload_bytes().empty());
  Bytes wire = m.to_wire(0);
  EXPECT_TRUE(wire.empty());
}

TEST(Message, PushBlocksAppearOutermostFirstOnWire) {
  // Headers pushed as the message travels DOWN: the last pushed (bottom
  // layer) must be first on the wire, so the receiving bottom layer pops
  // it first.
  Message m = Message::from_string("PP");
  m.push_block(to_bytes("AA"));  // upper layer
  m.push_block(to_bytes("bb"));  // lower layer
  Bytes wire = m.to_wire(0);
  EXPECT_EQ(to_string(wire), "bbAAPP");
  EXPECT_EQ(m.header_overhead(), 4u);
}

TEST(Message, RxPopsInWireOrder) {
  Message tx = Message::from_string("payload");
  tx.push_block(to_bytes("UPPER"));
  tx.push_block(to_bytes("lower"));
  Message rx = Message::from_wire(tx.to_wire(0), 0);
  ASSERT_TRUE(rx.rx());
  // Bottom layer reads its 5 bytes first.
  Reader r1 = rx.reader();
  EXPECT_EQ(to_string(r1.raw(5)), "lower");
  rx.consume(5);
  Reader r2 = rx.reader();
  EXPECT_EQ(to_string(r2.raw(5)), "UPPER");
  rx.consume(5);
  EXPECT_EQ(rx.payload_string(), "payload");
}

TEST(Message, WireLengthLimitExcludesTrailer) {
  Message tx = Message::from_string("data");
  Bytes wire = tx.to_wire(0);
  wire.push_back(0xCC);  // transport trailer (e.g. COM's CRC)
  wire.push_back(0xCC);
  auto buf = std::make_shared<const Bytes>(wire);
  Message rx = Message::from_wire(buf, 0, wire.size() - 2);
  EXPECT_EQ(rx.payload_string(), "data");
}

TEST(Message, RegionRoundTrip) {
  Message tx = Message::from_string("p");
  MutByteSpan region = tx.region_mut(4);
  region[0] = 0xde;
  region[3] = 0xad;
  Bytes wire = tx.to_wire(4);
  ASSERT_GE(wire.size(), 5u);
  EXPECT_EQ(wire[0], 0xde);
  Message rx = Message::from_wire(wire, 4);
  EXPECT_EQ(rx.region().size(), 4u);
  EXPECT_EQ(rx.region()[3], 0xad);
  EXPECT_EQ(rx.payload_string(), "p");
}

TEST(Message, RegionZeroPaddedWhenUnwritten) {
  Message tx = Message::from_string("x");
  Bytes wire = tx.to_wire(8);  // region never touched
  ASSERT_EQ(wire.size(), 9u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(wire[static_cast<std::size_t>(i)], 0);
}

TEST(Message, SlicePayloadZeroCopy) {
  auto buf = std::make_shared<const Bytes>(to_bytes("0123456789"));
  Message m = Message::from_shared(buf, 0, 10);
  Message a = m.slice_payload(0, 4);
  Message b = m.slice_payload(4, 6);
  EXPECT_EQ(a.payload_string(), "0123");
  EXPECT_EQ(b.payload_string(), "456789");
  // Slices share the original buffer (use_count grows).
  EXPECT_GE(buf.use_count(), 3);
}

TEST(Message, SliceAcrossChunks) {
  // A reassembled message may have a chunked payload; slicing spans chunks.
  auto b1 = std::make_shared<const Bytes>(to_bytes("abc"));
  auto b2 = std::make_shared<const Bytes>(to_bytes("defg"));
  Message m = Message::from_shared(b1, 0, 3);
  // Build a two-chunk payload via slicing and wire trip instead: compose
  // manually through upper_wire.
  Message m2 = Message::from_shared(b2, 0, 4);
  Bytes joined = m.upper_wire();
  Bytes j2 = m2.upper_wire();
  joined.insert(joined.end(), j2.begin(), j2.end());
  Message whole = Message::from_payload(joined);
  EXPECT_EQ(whole.slice_payload(2, 3).payload_string(), "cde");
}

TEST(Message, SliceOutOfRangeThrows) {
  Message m = Message::from_string("abc");
  EXPECT_THROW(m.slice_payload(1, 5), std::out_of_range);
}

TEST(Message, RxSlice) {
  Message rx = Message::from_wire(to_bytes("hdrPAYLOAD"), 0);
  rx.consume(3);
  Message s = rx.slice_payload(3, 4);
  EXPECT_EQ(s.payload_string(), "LOAD");
}

TEST(Message, ConsumePastEndThrows) {
  Message rx = Message::from_wire(to_bytes("abc"), 0);
  EXPECT_THROW(rx.consume(4), DecodeError);
}

TEST(Message, ShortRegionThrows) {
  EXPECT_THROW(Message::from_wire(to_bytes("ab"), 4), DecodeError);
}

TEST(Message, UpperWireTxIncludesBlocksAndPayload) {
  Message m = Message::from_string("pay");
  m.push_block(to_bytes("h1"));
  m.push_block(to_bytes("h2"));
  EXPECT_EQ(to_string(m.upper_wire()), "h2h1pay");
}

TEST(Message, UpperWireRxIsRemainder) {
  Message rx = Message::from_wire(to_bytes("lowUPPERpay"), 0);
  rx.consume(3);
  EXPECT_EQ(to_string(rx.upper_wire()), "UPPERpay");
}

TEST(Message, CaptureAndReinjectTx) {
  // The logging path: capture a tx message mid-stack, rebuild it later.
  using layers::CapturedMsg;
  Message m = Message::from_string("body");
  m.push_block(to_bytes("UP"));
  MutByteSpan region = m.region_mut(2);
  region[0] = 0x7f;
  CapturedMsg cap = CapturedMsg::capture(m);
  // Reinject as tx: content becomes the payload, region re-seeded.
  Message tx = cap.to_tx();
  EXPECT_EQ(tx.payload_string(), "UPbody");
  EXPECT_EQ(tx.region_copy()[0], 0x7f);
  // Reinject as rx: positioned exactly above the capturing layer.
  Message rx = cap.to_rx();
  ASSERT_TRUE(rx.rx());
  Reader r = rx.reader();
  EXPECT_EQ(to_string(r.raw(2)), "UP");
  rx.consume(2);
  EXPECT_EQ(rx.payload_string(), "body");
  EXPECT_EQ(rx.region()[0], 0x7f);
}

TEST(Message, CaptureSerializationRoundTrip) {
  using layers::CapturedMsg;
  Message m = Message::from_string("xyz");
  m.push_block(to_bytes("H"));
  CapturedMsg cap = CapturedMsg::capture(m);
  Writer w;
  cap.encode(w);
  Reader r(w.data());
  CapturedMsg back = CapturedMsg::decode(r);
  EXPECT_EQ(back.region, cap.region);
  EXPECT_EQ(back.rest, cap.rest);
}

TEST(Message, FromWireWithOffsetSkipsFraming) {
  // Endpoint-level framing: [8-byte gid prefix][message bytes][trailer].
  Bytes frame = to_bytes("GIDGIDGIhdrsPAYLOADtt");
  auto buf = std::make_shared<const Bytes>(frame);
  Message rx = Message::from_wire(buf, 0, frame.size() - 2, 8);
  Reader r = rx.reader();
  EXPECT_EQ(to_string(r.raw(4)), "hdrs");
  rx.consume(4);
  EXPECT_EQ(rx.payload_string(), "PAYLOAD");
}

TEST(Message, FromWireOffsetWithRegion) {
  Bytes frame = to_bytes("12345678RRRRrest");
  Message rx = Message::from_wire(
      std::make_shared<const Bytes>(frame), 4, frame.size(), 8);
  EXPECT_EQ(to_string(rx.region()), "RRRR");
  EXPECT_EQ(rx.payload_string(), "rest");
}

TEST(Message, FromWireOffsetPastEndThrows) {
  Bytes tiny = to_bytes("abc");
  EXPECT_THROW(Message::from_wire(std::make_shared<const Bytes>(tiny), 0,
                                  tiny.size(), 5),
               DecodeError);
}

// -- linear (headroom) builder ----------------------------------------------

// Build the same message twice -- once chunked (legacy gather path), once
// linear (headroom builder) -- and check the wire bytes agree.
TEST(MessageLinear, FinalizeMatchesLegacyToWire) {
  constexpr std::size_t kRegion = 4;
  auto build = [](Message& m) {
    MutByteSpan region = m.region_mut(kRegion);
    region[0] = 0xaa;
    region[2] = 0xbb;
    m.push_block(to_bytes("INNER"));
    m.push_block(to_bytes("out"));
  };

  Message legacy = Message::from_string("payload");
  build(legacy);
  Bytes want = legacy.to_wire(kRegion);

  WireBufPool pool(256);
  Message lin = Message::from_string("payload");
  ASSERT_TRUE(lin.linearize(pool.acquire(256), kRegion, /*tailroom=*/2));
  ASSERT_TRUE(lin.linear());
  build(lin);
  EXPECT_EQ(lin.to_wire(kRegion), want);  // gather from linear form agrees

  MutByteSpan frame = lin.finalize_wire(0x1122334455667788ull, kRegion, 2,
                                        /*epoch_stamp=*/0x0a0b);
  ASSERT_NE(frame.data(), nullptr);
  ASSERT_EQ(frame.size(), 10 + want.size() + 2);
  EXPECT_EQ(frame[0], 0x88);  // gid little-endian
  EXPECT_EQ(frame[7], 0x11);
  EXPECT_EQ(frame[8], 0x0b);  // stack-epoch stamp little-endian
  EXPECT_EQ(frame[9], 0x0a);
  EXPECT_EQ(Bytes(frame.begin() + 10, frame.end() - 2), want);

  // finalize_wire is repeatable (retransmission) and leaves content intact.
  MutByteSpan again = lin.finalize_wire(0x1122334455667788ull, kRegion, 2,
                                        /*epoch_stamp=*/0x0a0b);
  EXPECT_EQ(Bytes(again.begin() + 10, again.end() - 2), want);
  EXPECT_EQ(lin.payload_string(), "payload");
}

// linearize absorbs blocks pushed before the message reached the stack
// boundary (mid-stack-originated control messages), preserving wire order.
TEST(MessageLinear, LinearizeAbsorbsExistingBlocks) {
  Message legacy = Message::from_string("pp");
  legacy.push_block(to_bytes("AA"));
  legacy.push_block(to_bytes("bb"));
  Bytes want = legacy.to_wire(0);

  WireBufPool pool(128);
  Message lin = Message::from_string("pp");
  lin.push_block(to_bytes("AA"));
  lin.push_block(to_bytes("bb"));
  ASSERT_TRUE(lin.linearize(pool.acquire(128), 0, 0));
  EXPECT_EQ(lin.to_wire(0), want);
  lin.push_block(to_bytes("cc"));  // later pushes land outside, in order
  EXPECT_EQ(to_string(lin.to_wire(0)), "ccbbAApp");
}

TEST(MessageLinear, LinearizeRejectsOversize) {
  WireBufPool pool(16);
  Message m = Message::from_string("this payload is far too large");
  EXPECT_FALSE(m.linearize(pool.acquire(16), 0, 0));
  EXPECT_FALSE(m.linear());  // unchanged; gather path still works
  EXPECT_EQ(m.payload_string(), "this payload is far too large");
}

// Headroom overflow degrades gracefully: the message moves to a larger
// off-pool buffer and the pushes keep working.
TEST(MessageLinear, HeadroomOverflowGrows) {
  auto& growths = msg_path_stats().headroom_growths;
  std::uint64_t before = growths.load();
  WireBufPool pool(32);
  Message m = Message::from_string("p");
  ASSERT_TRUE(m.linearize(pool.acquire(32), 0, 0));
  Bytes big(64, 0x5a);
  m.push_block(big);  // cannot fit in 32 bytes of headroom
  EXPECT_TRUE(m.linear());
  EXPECT_GT(growths.load(), before);
  Bytes wire = m.to_wire(0);
  ASSERT_EQ(wire.size(), 65u);
  EXPECT_EQ(wire[0], 0x5a);
  EXPECT_EQ(wire[64], static_cast<std::uint8_t>('p'));
}

// Copies of a linear message share the wire buffer; the first mutation of
// a shared buffer clones it, leaving the other copy untouched.
TEST(MessageLinear, CopyOnWrite) {
  auto& cows = msg_path_stats().unshare_copies;
  std::uint64_t before = cows.load();
  WireBufPool pool(128);
  Message a = Message::from_string("body");
  ASSERT_TRUE(a.linearize(pool.acquire(128), 0, 0));
  a.push_block(to_bytes("H1"));
  Message b = a;  // shares the buffer
  b.push_block(to_bytes("H2"));  // must not disturb a
  EXPECT_GT(cows.load(), before);
  EXPECT_EQ(to_string(a.to_wire(0)), "H1body");
  EXPECT_EQ(to_string(b.to_wire(0)), "H2H1body");
}

TEST(MessageLinear, SlicePayload) {
  WireBufPool pool(128);
  Message m = Message::from_string("0123456789");
  ASSERT_TRUE(m.linearize(pool.acquire(128), 0, 0));
  Message a = m.slice_payload(0, 4);
  Message b = m.slice_payload(4, 6);
  EXPECT_EQ(a.payload_string(), "0123");
  EXPECT_EQ(b.payload_string(), "456789");
}

TEST(MessageLinear, MakeLinearRoundTrip) {
  WireBufPool pool(128);
  Bytes payload = to_bytes("direct");
  Message m = Message::make_linear(pool.acquire(128), 0, 0, ByteSpan(payload));
  ASSERT_TRUE(m.linear());
  EXPECT_EQ(m.payload_string(), "direct");
  MutByteSpan hdr = m.prepend(3);
  ASSERT_NE(hdr.data(), nullptr);
  hdr[0] = 'h';
  hdr[1] = 'd';
  hdr[2] = 'r';
  MutByteSpan frame = m.finalize_wire(7, 0, 0);
  ASSERT_NE(frame.data(), nullptr);
  Message rx = Message::from_wire(ByteSpan(frame), 0);
  Reader r = rx.reader();
  EXPECT_EQ(r.u64(), 7u);   // gid prefix
  EXPECT_EQ(r.u16(), 0u);   // default stack-epoch stamp
  rx.consume(10);
  Reader r2 = rx.reader();
  EXPECT_EQ(to_string(r2.raw(3)), "hdr");
  rx.consume(3);
  EXPECT_EQ(rx.payload_string(), "direct");
}

// Growing the region past its staged capacity abandons the linear form but
// keeps the logical content (rare escape hatch).
TEST(MessageLinear, RegionOverflowDelinearizes) {
  WireBufPool pool(128);
  Message m = Message::from_string("p");
  ASSERT_TRUE(m.linearize(pool.acquire(128), 2, 0));
  m.push_block(to_bytes("HH"));
  MutByteSpan region = m.region_mut(6);  // > staged cap of 2
  ASSERT_EQ(region.size(), 6u);
  region[5] = 0x42;
  EXPECT_FALSE(m.linear());
  Bytes wire = m.to_wire(6);
  EXPECT_EQ(wire[5], 0x42);
  EXPECT_EQ(to_string(Bytes(wire.begin() + 6, wire.end())), "HHp");
}

TEST(Message, CopyShareChunks) {
  auto buf = std::make_shared<const Bytes>(Bytes(1000, 7));
  long before = buf.use_count();
  Message m = Message::from_shared(buf, 0, 1000);
  Message copy = m;  // copying a message must not copy payload bytes
  EXPECT_EQ(buf.use_count(), before + 2);
  EXPECT_EQ(copy.payload_size(), 1000u);
}

}  // namespace
}  // namespace horus
