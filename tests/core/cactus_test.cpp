// Cactus stacks (Section 4): "a process is allowed to put multiple
// endpoints on a single base endpoint. This way, a tree or cactus stack of
// protocols can be built." One endpoint, several protocol stacks sharing
// its address and transport, each serving different groups with different
// guarantees.
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

constexpr GroupId kOrdered{21};
constexpr GroupId kCheap{22};

TEST(Cactus, TwoStacksOneEndpoint) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  HorusSystem sys(o);
  // Base stack: full virtual synchrony + total order.
  auto& a = sys.create_endpoint("TOTAL:MBRSHIP:FRAG:NAK:COM");
  auto& b = sys.create_endpoint("TOTAL:MBRSHIP:FRAG:NAK:COM");
  // A second, cheaper stack branching off each endpoint's base.
  Stack& a_cheap = sys.add_stack(a, "NAK:COM");
  Stack& b_cheap = sys.add_stack(b, "NAK:COM");

  std::vector<std::pair<std::uint64_t, std::string>> got_b;
  b.on_upcall([&](Group& g, UpEvent& ev) {
    if (ev.type == UpType::kCast) {
      got_b.emplace_back(g.gid().id, ev.msg.payload_string());
    }
  });

  // Group 1 on the ordered stack (membership-managed views).
  a.join(kOrdered);
  sys.run_for(100 * sim::kMillisecond);
  b.join(kOrdered, a.address());
  sys.run_for(2 * sim::kSecond);

  // Group 2 on the cheap stack (app-managed destination set).
  a.join_on(a_cheap, kCheap);
  b.join_on(b_cheap, kCheap);
  a.install_view(kCheap, {a.address(), b.address()});
  b.install_view(kCheap, {a.address(), b.address()});
  sys.run_for(100 * sim::kMillisecond);

  a.cast(kOrdered, Message::from_string("via TOTAL"));
  a.cast(kCheap, Message::from_string("via NAK"));
  sys.run_for(2 * sim::kSecond);

  ASSERT_EQ(got_b.size(), 2u);
  bool saw_ordered = false, saw_cheap = false;
  for (auto& [gid, payload] : got_b) {
    if (gid == kOrdered.id) {
      saw_ordered = true;
      EXPECT_EQ(payload, "via TOTAL");
    }
    if (gid == kCheap.id) {
      saw_cheap = true;
      EXPECT_EQ(payload, "via NAK");
    }
  }
  EXPECT_TRUE(saw_ordered);
  EXPECT_TRUE(saw_cheap);
}

TEST(Cactus, StacksHaveIndependentProperties) {
  HorusSystem sys;
  auto& ep = sys.create_endpoint("TOTAL:MBRSHIP:FRAG:NAK:COM");
  Stack& cheap = sys.add_stack(ep, "COM");
  EXPECT_TRUE(props::has(ep.stack().provided_properties(),
                         props::Property::kTotalOrder));
  EXPECT_FALSE(props::has(cheap.provided_properties(),
                          props::Property::kTotalOrder));
  EXPECT_TRUE(props::has(cheap.provided_properties(),
                         props::Property::kSourceAddress));
}

TEST(Cactus, IllFormedBranchRejected) {
  HorusSystem sys;
  auto& ep = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  EXPECT_THROW(sys.add_stack(ep, "FRAG:COM"), std::invalid_argument);
}

TEST(Cactus, DifferentCodecsPerBranchInterop) {
  // Codec is per-stack config... in this implementation config is shared
  // per endpoint, so both branches use one codec -- but two endpoints with
  // multiple branches each still interoperate branch-to-branch.
  HorusSystem::Options o;
  o.net.loss = 0.1;
  HorusSystem sys(o);
  auto& a = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  auto& b = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  Stack& a2 = sys.add_stack(a, "CAUSAL:MBRSHIP:FRAG:NAK:COM");
  Stack& b2 = sys.add_stack(b, "CAUSAL:MBRSHIP:FRAG:NAK:COM");
  int causal_got = 0;
  b.on_upcall([&](Group& g, UpEvent& ev) {
    if (ev.type == UpType::kCast && g.gid() == kCheap) ++causal_got;
  });
  a.join_on(a2, kCheap);
  sys.run_for(100 * sim::kMillisecond);
  b.join_on(b2, kCheap, a.address());
  sys.run_for(2 * sim::kSecond);
  for (int i = 0; i < 10; ++i) {
    a.cast(kCheap, Message::from_string("c" + std::to_string(i)));
  }
  sys.run_for(3 * sim::kSecond);
  EXPECT_EQ(causal_got, 10);
}

}  // namespace
}  // namespace horus::testing
