#include "horus/core/view.hpp"

#include <gtest/gtest.h>

namespace horus {
namespace {

View sample() {
  return View(ViewId{3, Address{1}}, {Address{1}, Address{5}, Address{2}});
}

TEST(View, RankReflectsSeniority) {
  View v = sample();
  EXPECT_EQ(v.rank_of(Address{1}), 0u);
  EXPECT_EQ(v.rank_of(Address{5}), 1u);
  EXPECT_EQ(v.rank_of(Address{2}), 2u);
  EXPECT_FALSE(v.rank_of(Address{9}).has_value());
  EXPECT_EQ(v.oldest(), Address{1});
}

TEST(View, ContainsAndSize) {
  View v = sample();
  EXPECT_TRUE(v.contains(Address{5}));
  EXPECT_FALSE(v.contains(Address{4}));
  EXPECT_EQ(v.size(), 3u);
  EXPECT_FALSE(v.empty());
  EXPECT_TRUE(View().empty());
}

TEST(View, SuccessorRemovesFailedKeepsOrder) {
  View v = sample();
  View next = v.successor({Address{5}}, {}, Address{1});
  EXPECT_EQ(next.id().seq, 4u);
  EXPECT_EQ(next.id().coordinator, Address{1});
  ASSERT_EQ(next.size(), 2u);
  EXPECT_EQ(next.member(0), Address{1});
  EXPECT_EQ(next.member(1), Address{2});
}

TEST(View, SuccessorAppendsJoinersSorted) {
  View v = sample();
  View next = v.successor({}, {Address{9}, Address{7}}, Address{1});
  ASSERT_EQ(next.size(), 5u);
  // Survivors keep seniority order; joiners appended sorted.
  EXPECT_EQ(next.member(0), Address{1});
  EXPECT_EQ(next.member(3), Address{7});
  EXPECT_EQ(next.member(4), Address{9});
}

TEST(View, SuccessorDeduplicatesJoiners) {
  View v = sample();
  View next = v.successor({}, {Address{5}}, Address{1});  // already in
  EXPECT_EQ(next.size(), 3u);
}

TEST(View, SuccessorFailedAndJoiningSimultaneously) {
  View v = sample();
  View next = v.successor({Address{1}}, {Address{8}}, Address{5});
  EXPECT_EQ(next.oldest(), Address{5}) << "next-oldest takes rank 0";
  EXPECT_TRUE(next.contains(Address{8}));
  EXPECT_FALSE(next.contains(Address{1}));
}

TEST(View, EncodeDecodeRoundTrip) {
  View v = sample();
  Writer w;
  v.encode(w);
  Reader r(w.data());
  View back = View::decode(r);
  EXPECT_EQ(back, v);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(View, DecodeRejectsHugeMemberCount) {
  Writer w;
  w.u64(1);
  w.u64(1);
  w.varint(100'000'000);  // absurd member count
  Reader r(w.data());
  EXPECT_THROW(View::decode(r), DecodeError);
}

TEST(View, ViewIdOrdering) {
  ViewId a{1, Address{1}};
  ViewId b{2, Address{1}};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, (ViewId{1, Address{1}}));
}

TEST(View, ToStringIsReadable) {
  EXPECT_EQ(sample().to_string(), "v3@ep1[ep1,ep5,ep2]");
}

}  // namespace
}  // namespace horus
