// UdpTransport over real loopback sockets: datagrams through the kernel,
// rx edge cases hitting exactly their drop counter, and the batched
// sendmmsg path carrying a real multicast fan-out.
#include "horus/net/udp.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "horus/net/runtime.hpp"

namespace horus::net {
namespace {

using namespace std::chrono_literals;

/// An ephemeral loopback UDP socket the test owns (a controllable fake
/// peer: we can send raw datagrams from its port).
struct RawSock {
  int fd = -1;
  std::uint16_t port = 0;

  RawSock() {
    fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    ::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
    socklen_t len = sizeof(sa);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
    port = ntohs(sa.sin_port);
  }
  ~RawSock() {
    if (fd >= 0) ::close(fd);
  }
  RawSock(const RawSock&) = delete;
  RawSock& operator=(const RawSock&) = delete;

  void send_to(std::uint16_t dst_port, const Bytes& data) const {
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(dst_port);
    inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    ::sendto(fd, data.data(), data.size(), 0,
             reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  }
};

std::string loopback_entry(std::uint64_t id, std::uint16_t port) {
  return std::to_string(id) + " 127.0.0.1:" + std::to_string(port) + "\n";
}

/// Spin until `pred` holds or ~2s pass (the reactor is asynchronous).
bool eventually(const std::function<bool()>& pred) {
  for (int i = 0; i < 200; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

TEST(UdpTransport, RejectsBookWithoutSelf) {
  AddressBook book = AddressBook::parse("2 127.0.0.1:7002\n");
  EXPECT_THROW(UdpTransport(book, Address{1}), std::invalid_argument);
}

TEST(UdpTransport, TxOversizeAndUnroutableBumpTheirCounters) {
  // Probe a free port, release it, then let the transport bind it
  // (loopback-only, so the reuse race is negligible).
  std::uint16_t freed;
  {
    RawSock probe;
    freed = probe.port;
  }
  AddressBook book = AddressBook::parse(loopback_entry(1, freed));
  UdpTransport udp(book, Address{1});

  Bytes oversize(udp.config().mtu + 1, 0xab);
  udp.send(Address{1}, Address{1}, oversize);
  EXPECT_EQ(udp.stats().tx_oversize_dropped.load(), 1u);

  Bytes small(32, 0x01);
  udp.send(Address{1}, Address{99}, small);  // 99 is not in the book
  EXPECT_EQ(udp.stats().tx_unroutable.load(), 1u);

  std::vector<Address> dsts = {Address{98}, Address{99}};
  udp.send_batch(Address{1}, dsts, small);
  EXPECT_EQ(udp.stats().tx_unroutable.load(), 3u);
  EXPECT_EQ(udp.stats().tx_datagrams.load(), 0u);
}

/// Fixture: one real node (id 1) plus two raw-socket identities -- id 2 is
/// in the book (a known peer we can forge traffic from), the anonymous
/// socket is not (an unknown peer).
class UdpRxEdgeCases : public ::testing::Test {
 protected:
  void SetUp() override {
    known_peer_ = std::make_unique<RawSock>();
    std::uint16_t self_port;
    {
      RawSock probe;
      self_port = probe.port;
    }
    book_ = AddressBook::parse(loopback_entry(1, self_port) +
                               loopback_entry(2, known_peer_->port));
    NodeConfig cfg;
    cfg.spec = "MBRSHIP:FRAG:NAK:COM";
    node_ = std::make_unique<NodeRuntime>(book_, Address{1}, cfg);
    node_->endpoint().join(GroupId{7});
    node_->run_for(100ms);  // singleton view forms; reactor live
  }

  AddressBook book_;
  std::unique_ptr<RawSock> known_peer_;
  std::unique_ptr<NodeRuntime> node_;
};

TEST_F(UdpRxEdgeCases, TruncatedDatagramBumpsOnlyRxTruncated) {
  const UdpStats& s = node_->udp().stats();
  Bytes huge(node_->udp().config().mtu + 50, 0x7f);
  known_peer_->send_to(node_->udp().local_port(), huge);
  ASSERT_TRUE(eventually([&] { return s.rx_truncated.load() == 1; }));
  EXPECT_EQ(s.rx_unknown_peer.load(), 0u);
  EXPECT_EQ(s.rx_datagrams.load(), 0u);  // never counted as received
}

TEST_F(UdpRxEdgeCases, UnknownPeerBumpsOnlyRxUnknownPeer) {
  const UdpStats& s = node_->udp().stats();
  RawSock anonymous;
  anonymous.send_to(node_->udp().local_port(), Bytes(64, 0x11));
  ASSERT_TRUE(eventually([&] { return s.rx_unknown_peer.load() == 1; }));
  EXPECT_EQ(s.rx_truncated.load(), 0u);
  EXPECT_EQ(s.rx_datagrams.load(), 0u);
}

TEST_F(UdpRxEdgeCases, KnownPeerGarbageIsReceivedThenDroppedByDemux) {
  // In the book and under the MTU: the transport accepts it (rx_datagrams)
  // and the endpoint's gid demux drops it -- no crash, no counter noise.
  const UdpStats& s = node_->udp().stats();
  known_peer_->send_to(node_->udp().local_port(), Bytes(64, 0x22));
  ASSERT_TRUE(eventually([&] { return s.rx_datagrams.load() == 1; }));
  EXPECT_EQ(s.rx_truncated.load(), 0u);
  EXPECT_EQ(s.rx_unknown_peer.load(), 0u);
}

TEST(UdpTransport, TwoNodesCastOverRealSockets_BatchedTx) {
  std::uint16_t p1, p2;
  {
    RawSock a, b;
    p1 = a.port;
    p2 = b.port;
  }
  AddressBook book =
      AddressBook::parse(loopback_entry(1, p1) + loopback_entry(2, p2));
  NodeConfig cfg;
  NodeRuntime n1(book, Address{1}, cfg);
  NodeRuntime n2(book, Address{2}, cfg);

  std::mutex mu;
  std::vector<std::string> got1, got2;
  std::vector<View> views1, views2;
  auto attach = [&mu](Endpoint& ep, std::vector<std::string>& got,
                      std::vector<View>& views) {
    ep.on_upcall([&mu, &got, &views](Group&, UpEvent& ev) {
      std::lock_guard lock(mu);
      if (ev.type == UpType::kCast) got.push_back(ev.msg.payload_string());
      if (ev.type == UpType::kView) views.push_back(ev.view);
    });
  };
  attach(n1.endpoint(), got1, views1);
  attach(n2.endpoint(), got2, views2);

  GroupId g{11};
  n1.endpoint().join(g);
  n2.endpoint().join(g, Address{1});
  auto pump = [&](std::chrono::milliseconds total) {
    auto end = std::chrono::steady_clock::now() + total;
    while (std::chrono::steady_clock::now() < end) {
      n1.run_for(10ms);
      n2.run_for(10ms);
    }
  };
  // Wait for the two-member view on both nodes.
  auto both_joined = [&] {
    std::lock_guard lock(mu);
    return !views1.empty() && views1.back().size() == 2 &&
           !views2.empty() && views2.back().size() == 2;
  };
  for (int i = 0; i < 300 && !both_joined(); ++i) pump(10ms);
  ASSERT_TRUE(both_joined()) << "two-member view never formed";

  n1.endpoint().cast(g, Message::from_string("from-1"));
  n2.endpoint().cast(g, Message::from_string("from-2"));
  auto all_delivered = [&] {
    std::lock_guard lock(mu);
    return got1.size() == 2 && got2.size() == 2;
  };
  for (int i = 0; i < 300 && !all_delivered(); ++i) pump(10ms);
  ASSERT_TRUE(all_delivered());

  // The 2-member fan-out went through the wire as sendmmsg batches.
  EXPECT_GE(n1.udp().stats().tx_batches.load(), 1u);
  EXPECT_GT(n1.udp().stats().tx_datagrams.load(), 0u);
  EXPECT_GT(n2.udp().stats().rx_datagrams.load(), 0u);
  n1.shutdown();
  n2.shutdown();
}

}  // namespace
}  // namespace horus::net
