// [subprocess] Multi-process deployment over real loopback UDP: three
// horus-node processes (and three replicated_kv replicas) talking through
// the kernel, no shared memory -- the acceptance run for horus-net.
//
// Each child prints a machine-readable RESULT (or DIGEST) line; the test
// asserts full delivery, per-sender digest agreement (same casts in the
// same per-sender order everywhere), and agreed views across join, leave
// and a 5% fault-shim drop rate.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#ifndef HORUS_NODE_BIN
#error "HORUS_NODE_BIN must be defined by the build"
#endif
#ifndef REPLICATED_KV_BIN
#error "REPLICATED_KV_BIN must be defined by the build"
#endif

namespace {

/// Grab `n` distinct free loopback UDP ports. All sockets are held open
/// until every port is known, so the kernel can't hand the same port twice.
std::vector<std::uint16_t> free_ports(int n) {
  std::vector<int> fds;
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < n; ++i) {
    int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    ::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
    socklen_t len = sizeof(sa);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
    ports.push_back(ntohs(sa.sin_port));
    fds.push_back(fd);
  }
  for (int fd : fds) ::close(fd);
  return ports;
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/horus_net_XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~TempDir() {
    // Best-effort cleanup of the handful of small files we created.
    std::string cmd = "rm -rf " + path;
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
};

std::string write_book(const TempDir& dir,
                       const std::vector<std::uint16_t>& ports) {
  std::string path = dir.path + "/book.txt";
  std::ofstream out(path);
  for (std::size_t i = 0; i < ports.size(); ++i) {
    out << (i + 1) << " 127.0.0.1:" << ports[i] << "\n";
  }
  return path;
}

struct ChildRun {
  int exit_code = -1;
  std::string output;
};

/// Launch every child simultaneously (stdout redirected to a per-child
/// file), then wait for all of them. Simultaneous start matters: a node
/// started much later than its peers can watch them exit and end up alone
/// in a singleton view.
std::vector<ChildRun> run_children(
    const TempDir& dir, const std::vector<std::vector<std::string>>& argvs) {
  std::vector<pid_t> pids;
  std::vector<std::string> out_paths;
  for (std::size_t i = 0; i < argvs.size(); ++i) {
    std::string out_path = dir.path + "/child" + std::to_string(i) + ".out";
    out_paths.push_back(out_path);
    pid_t pid = fork();
    if (pid == 0) {
      int fd = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      dup2(fd, STDOUT_FILENO);
      dup2(fd, STDERR_FILENO);
      ::close(fd);
      std::vector<char*> argv;
      for (const std::string& a : argvs[i]) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      _exit(127);
    }
    pids.push_back(pid);
  }
  std::vector<ChildRun> runs(argvs.size());
  for (std::size_t i = 0; i < pids.size(); ++i) {
    int status = 0;
    waitpid(pids[i], &status, 0);
    runs[i].exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    std::ifstream in(out_paths[i]);
    std::stringstream ss;
    ss << in.rdbuf();
    runs[i].output = ss.str();
  }
  return runs;
}

struct PerSender {
  std::uint64_t count = 0;
  std::string digest;
};

struct NodeResult {
  std::uint64_t id = 0;
  std::uint64_t views = 0;
  std::uint64_t view_seq = 0;
  std::vector<std::uint64_t> view;
  long sent = 0;
  std::uint64_t delivered = 0;
  std::map<std::uint64_t, PerSender> from;
  bool left = false;
};

std::optional<NodeResult> parse_result(const std::string& output) {
  std::istringstream lines(output);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("RESULT ", 0) != 0) continue;
    NodeResult r;
    std::istringstream toks(line.substr(7));
    std::string tok;
    while (toks >> tok) {
      auto eq = tok.find('=');
      if (eq == std::string::npos) continue;
      std::string key = tok.substr(0, eq);
      std::string val = tok.substr(eq + 1);
      if (key == "id") r.id = std::strtoull(val.c_str(), nullptr, 10);
      else if (key == "views") r.views = std::strtoull(val.c_str(), nullptr, 10);
      else if (key == "view_seq") r.view_seq = std::strtoull(val.c_str(), nullptr, 10);
      else if (key == "sent") r.sent = std::strtol(val.c_str(), nullptr, 10);
      else if (key == "delivered") r.delivered = std::strtoull(val.c_str(), nullptr, 10);
      else if (key == "left") r.left = val == "1";
      else if (key == "view") {
        std::istringstream ms(val);
        std::string m;
        while (std::getline(ms, m, ',')) {
          if (!m.empty()) r.view.push_back(std::strtoull(m.c_str(), nullptr, 10));
        }
      } else if (key == "from") {
        std::istringstream fs(val);
        std::string entry;
        while (std::getline(fs, entry, ',')) {
          std::uint64_t sender = 0, count = 0;
          char digest[32] = {0};
          if (std::sscanf(entry.c_str(), "%llu:%llu:%31s",
                          reinterpret_cast<unsigned long long*>(&sender),
                          reinterpret_cast<unsigned long long*>(&count),
                          digest) == 3) {
            r.from[sender] = PerSender{count, digest};
          }
        }
      }
    }
    return r;
  }
  return std::nullopt;
}

std::vector<std::string> node_args(const std::string& book, int id,
                                   const std::vector<std::string>& extra) {
  std::vector<std::string> a = {HORUS_NODE_BIN,
                                "--id=" + std::to_string(id),
                                "--book=" + book,
                                "--casts=10",
                                "--run-ms=4000",
                                "--quiet"};
  if (id != 1) a.push_back("--contact=1");
  for (const std::string& e : extra) a.push_back(e);
  return a;
}

void expect_digests_agree(const std::vector<NodeResult>& results) {
  // Every node saw the same per-sender stream: same count, same
  // order-sensitive digest, for each of the three senders.
  for (std::uint64_t sender = 1; sender <= 3; ++sender) {
    SCOPED_TRACE("sender " + std::to_string(sender));
    ASSERT_TRUE(results[0].from.count(sender));
    const PerSender& ref = results[0].from.at(sender);
    EXPECT_EQ(ref.count, 10u);
    for (std::size_t i = 1; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].from.count(sender))
          << "node " << results[i].id << " heard nothing from " << sender;
      EXPECT_EQ(results[i].from.at(sender).count, ref.count);
      EXPECT_EQ(results[i].from.at(sender).digest, ref.digest)
          << "node " << results[i].id << " diverged on sender " << sender;
    }
  }
}

TEST(NetMultiproc, ThreeNodes_FullDelivery_AndGracefulLeave) {
  TempDir dir;
  std::string book = write_book(dir, free_ports(3));
  // Node 3 leaves at 3000ms -- well after all 30 casts (done by ~700ms),
  // well before the 4000ms run end, so nodes 1+2 install the {1,2} view.
  auto runs = run_children(dir, {node_args(book, 1, {}),
                                 node_args(book, 2, {}),
                                 node_args(book, 3, {"--leave-at-ms=3000"})});
  std::vector<NodeResult> results;
  for (const ChildRun& run : runs) {
    EXPECT_EQ(run.exit_code, 0) << run.output;
    auto r = parse_result(run.output);
    ASSERT_TRUE(r.has_value()) << "no RESULT line in:\n" << run.output;
    results.push_back(*r);
  }
  for (const NodeResult& r : results) {
    EXPECT_EQ(r.sent, 10) << "node " << r.id;
    EXPECT_EQ(r.delivered, 30u) << "node " << r.id;
  }
  expect_digests_agree(results);
  // Node 3 left gracefully; the survivors agree on the {1,2} view.
  EXPECT_TRUE(results[2].left);
  std::vector<std::uint64_t> survivors = {1, 2};
  EXPECT_EQ(results[0].view, survivors);
  EXPECT_EQ(results[1].view, survivors);
  EXPECT_EQ(results[0].view_seq, results[1].view_seq);
}

TEST(NetMultiproc, ThreeNodes_FaultShim5PercentDrop_StillDeliversAll) {
  TempDir dir;
  std::string book = write_book(dir, free_ports(3));
  // Every process drops 5% of its outgoing datagrams (independent seeded
  // streams); NAK retransmission must recover every cast regardless.
  std::vector<NodeResult> results;
  auto runs = run_children(
      dir, {node_args(book, 1, {"--drop=0.05", "--seed=101"}),
            node_args(book, 2, {"--drop=0.05", "--seed=202"}),
            node_args(book, 3, {"--drop=0.05", "--seed=303"})});
  for (const ChildRun& run : runs) {
    EXPECT_EQ(run.exit_code, 0) << run.output;
    auto r = parse_result(run.output);
    ASSERT_TRUE(r.has_value()) << "no RESULT line in:\n" << run.output;
    results.push_back(*r);
  }
  for (const NodeResult& r : results) {
    EXPECT_EQ(r.delivered, 30u) << "node " << r.id << " lost casts";
  }
  expect_digests_agree(results);
  // All three stayed: everyone converged on the same full-membership
  // view. Member *order* reflects join arrival at the coordinator, and
  // with the shim dropping 5% a lost JOIN retries late -- so pin the
  // membership set and cross-node agreement, not a specific global order.
  std::vector<std::uint64_t> membership = results[0].view;
  std::sort(membership.begin(), membership.end());
  EXPECT_EQ(membership, (std::vector<std::uint64_t>{1, 2, 3}));
  for (const NodeResult& r : results) {
    EXPECT_EQ(r.view, results[0].view) << "node " << r.id;
    EXPECT_EQ(r.view_seq, results[0].view_seq) << "node " << r.id;
  }
}

TEST(NetMultiproc, ReplicatedKvAcrossProcessesConverges) {
  TempDir dir;
  std::string book = write_book(dir, free_ports(3));
  auto kv_args = [&](int id) {
    std::vector<std::string> a = {REPLICATED_KV_BIN,
                                  "--node=" + std::to_string(id),
                                  "--book=" + book, "--run-ms=4000"};
    if (id != 1) a.push_back("--contact=1");
    return a;
  };
  auto runs = run_children(dir, {kv_args(1), kv_args(2), kv_args(3)});
  std::vector<std::string> digests;
  for (const ChildRun& run : runs) {
    EXPECT_EQ(run.exit_code, 0) << run.output;
    std::istringstream lines(run.output);
    std::string line;
    std::string digest;
    while (std::getline(lines, line)) {
      if (line.rfind("DIGEST ", 0) == 0) digest = line.substr(line.find(' ', 7) + 1);
    }
    ASSERT_FALSE(digest.empty()) << "no DIGEST line in:\n" << run.output;
    digests.push_back(digest);
  }
  // TOTAL order == identical replicas, across real process boundaries.
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
  EXPECT_NE(digests[0].find("leader="), std::string::npos);
}

}  // namespace
