// AddressBook: the id <-> ip:port mapping every horus-net deployment
// shares. Parsing must accept the documented format exactly and reject
// everything else with an error naming the line -- a bad book discovered
// at first send would be a distributed-debugging session instead of a
// startup failure.
#include "horus/net/address_book.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>

#include <stdexcept>

namespace horus::net {
namespace {

TEST(AddressBook, ParsesIds_Comments_BlankLines) {
  AddressBook book = AddressBook::parse(
      "# deployment book\n"
      "\n"
      "1 127.0.0.1:7001\n"
      "2 10.0.0.2:7002   # rack 2\n"
      "\t3\t192.168.1.3:7003\n");
  EXPECT_EQ(book.size(), 3u);
  ASSERT_NE(book.find(Address{1}), nullptr);
  ASSERT_NE(book.find(Address{2}), nullptr);
  ASSERT_NE(book.find(Address{3}), nullptr);
  EXPECT_EQ(book.find(Address{2})->host, "10.0.0.2");
  EXPECT_EQ(book.find(Address{2})->port, 7002);
  EXPECT_EQ(book.find(Address{4}), nullptr);
  EXPECT_FALSE(book.contains(Address{4}));
}

TEST(AddressBook, ParsesIPv6InBrackets) {
  AddressBook book = AddressBook::parse("7 [::1]:9000\n");
  const PeerEntry* e = book.find(Address{7});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->sa.ss_family, AF_INET6);
  EXPECT_EQ(e->port, 9000);
  EXPECT_EQ(e->host, "::1");
}

TEST(AddressBook, MembersAreSortedById) {
  AddressBook book =
      AddressBook::parse("5 127.0.0.1:7005\n1 127.0.0.1:7001\n3 127.0.0.1:7003\n");
  std::vector<Address> m = book.members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].id, 1u);
  EXPECT_EQ(m[1].id, 3u);
  EXPECT_EQ(m[2].id, 5u);
}

TEST(AddressBook, ToStringRoundTrips) {
  const std::string text = "1 127.0.0.1:7001\n2 [::1]:7002\n";
  AddressBook book = AddressBook::parse(text);
  EXPECT_EQ(book.to_string(), text);
  // And the rendering re-parses to the same book.
  AddressBook again = AddressBook::parse(book.to_string());
  EXPECT_EQ(again.size(), book.size());
}

// -- rejected input, each with the offending line in the message ------------

void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    AddressBook::parse(text);
    FAIL() << "expected invalid_argument for: " << text;
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find(needle), std::string::npos)
        << "message was: " << ex.what();
  }
}

TEST(AddressBook, RejectsMalformedLines) {
  expect_parse_error("justoneword\n", "line 1");
  expect_parse_error("1 127.0.0.1:7001\n2 127.0.0.1 7002\n", "line 2");
  expect_parse_error("1 127.0.0.1:7001 extra\n", "trailing");
}

TEST(AddressBook, RejectsBadIds) {
  expect_parse_error("x 127.0.0.1:7001\n", "bad id");
  expect_parse_error("0 127.0.0.1:7001\n", "id 0");
  expect_parse_error("-1 127.0.0.1:7001\n", "bad id");
}

TEST(AddressBook, RejectsBadAddresses) {
  expect_parse_error("1 not.an.ip:7001\n", "unparseable ip");
  expect_parse_error("1 127.0.0.1:0\n", "bad port");
  expect_parse_error("1 127.0.0.1:70000\n", "bad port");
  expect_parse_error("1 127.0.0.1:abc\n", "bad port");
  expect_parse_error("1 127.0.0.1\n", "expected <ip>:<port>");
  // Bare IPv6 is ambiguous about where the port starts.
  expect_parse_error("1 ::1:7001\n", "[addr]:port");
  expect_parse_error("1 [::1:7001\n", "unterminated");
}

TEST(AddressBook, RejectsDuplicates) {
  expect_parse_error("1 127.0.0.1:7001\n1 127.0.0.1:7002\n", "duplicate id");
  expect_parse_error("1 127.0.0.1:7001\n2 127.0.0.1:7001\n",
                     "share socket address");
}

TEST(AddressBook, LoadFileRejectsMissingFile) {
  EXPECT_THROW(AddressBook::load_file("/nonexistent/book.txt"),
               std::runtime_error);
}

// -- rx-side reverse lookup -------------------------------------------------

TEST(AddressBook, FindSenderMapsSocketAddressBack) {
  AddressBook book =
      AddressBook::parse("1 127.0.0.1:7001\n2 [::1]:7002\n");
  sockaddr_in v4{};
  v4.sin_family = AF_INET;
  v4.sin_port = htons(7001);
  inet_pton(AF_INET, "127.0.0.1", &v4.sin_addr);
  const PeerEntry* e = book.find_sender(
      reinterpret_cast<const sockaddr*>(&v4), sizeof(v4));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->addr.id, 1u);

  // Same ip, different port: a different (unknown) peer.
  v4.sin_port = htons(7999);
  EXPECT_EQ(book.find_sender(reinterpret_cast<const sockaddr*>(&v4),
                             sizeof(v4)),
            nullptr);

  sockaddr_in6 v6{};
  v6.sin6_family = AF_INET6;
  v6.sin6_port = htons(7002);
  inet_pton(AF_INET6, "::1", &v6.sin6_addr);
  const PeerEntry* e6 = book.find_sender(
      reinterpret_cast<const sockaddr*>(&v6), sizeof(v6));
  ASSERT_NE(e6, nullptr);
  EXPECT_EQ(e6->addr.id, 2u);
}

}  // namespace
}  // namespace horus::net
