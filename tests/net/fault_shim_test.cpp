// FaultShimTransport: wire-level fault injection with SimNetwork's
// determinism discipline -- decision i is a pure function of (seed, i),
// whatever path (send or send_batch) consumed the index.
#include "horus/net/fault_shim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "horus/sim/scheduler.hpp"

namespace horus::net {
namespace {

/// Records every datagram the shim lets through.
class RecordingTransport final : public Transport {
 public:
  struct Sent {
    Address dst;
    Bytes data;
  };

  void send(Address /*src*/, Address dst, ByteSpan datagram) override {
    sent.push_back({dst, Bytes(datagram.begin(), datagram.end())});
  }
  void send_batch(Address src, std::span<const Address> dsts,
                  ByteSpan datagram) override {
    ++batch_calls;
    for (const Address& d : dsts) send(src, d, datagram);
  }

  std::vector<Sent> sent;
  int batch_calls = 0;
};

Bytes payload(std::uint8_t tag) { return Bytes{tag, 2, 3}; }

TEST(FaultShim, ZeroRatesForwardEverything) {
  RecordingTransport inner;
  FaultShimTransport shim(inner, {});
  for (int i = 0; i < 50; ++i) {
    shim.send(Address{1}, Address{2}, payload(static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(inner.sent.size(), 50u);
  EXPECT_EQ(shim.stats().dropped.load(), 0u);
  EXPECT_EQ(shim.stats().duplicated.load(), 0u);
  EXPECT_EQ(shim.decisions_made(), 50u);
}

TEST(FaultShim, CertainDropLosesEverything) {
  RecordingTransport inner;
  FaultShimConfig cfg;
  cfg.drop = 1.0;
  FaultShimTransport shim(inner, cfg);
  shim.send(Address{1}, Address{2}, payload(0));
  std::vector<Address> dsts = {Address{2}, Address{3}};
  shim.send_batch(Address{1}, dsts, payload(1));
  EXPECT_TRUE(inner.sent.empty());
  EXPECT_EQ(shim.stats().dropped.load(), 3u);
  EXPECT_EQ(shim.decisions_made(), 3u);
}

TEST(FaultShim, CertainDuplicateDoublesEverything) {
  RecordingTransport inner;
  FaultShimConfig cfg;
  cfg.duplicate = 1.0;
  FaultShimTransport shim(inner, cfg);
  shim.send(Address{1}, Address{2}, payload(7));
  EXPECT_EQ(inner.sent.size(), 2u);
  EXPECT_EQ(shim.stats().duplicated.load(), 1u);
  EXPECT_EQ(inner.sent[0].data, inner.sent[1].data);
}

TEST(FaultShim, BatchSurvivorsGoOutAsOneInnerBatch) {
  RecordingTransport inner;
  FaultShimConfig cfg;
  cfg.drop = 0.5;
  cfg.seed = 99;
  FaultShimTransport shim(inner, cfg);
  std::vector<Address> dsts;
  for (std::uint64_t i = 2; i < 22; ++i) dsts.push_back(Address{i});
  shim.send_batch(Address{1}, dsts, payload(1));
  // Whatever the fates were, survivors + drops account for every
  // destination, and the survivors left through one batched call.
  EXPECT_EQ(inner.sent.size() + shim.stats().dropped.load(), dsts.size());
  EXPECT_GT(inner.sent.size(), 0u);  // p(all 20 dropped) = 2^-20
  EXPECT_EQ(inner.batch_calls, 1);
}

TEST(FaultShim, SameSeedSameFates_SendAndBatchAligned) {
  // The same seed must produce the same fate sequence whether decisions
  // are consumed one send() at a time or in one send_batch() -- the
  // property that keeps a faulty run describable by (seed, index).
  FaultShimConfig cfg;
  cfg.drop = 0.3;
  cfg.duplicate = 0.2;
  cfg.seed = 0xabcd;
  RecordingTransport singles_inner;
  FaultShimTransport singles(singles_inner, cfg);
  RecordingTransport batch_inner;
  FaultShimTransport batched(batch_inner, cfg);

  std::vector<Address> dsts;
  for (std::uint64_t i = 2; i < 34; ++i) dsts.push_back(Address{i});
  for (const Address& d : dsts) {
    singles.send(Address{1}, d, payload(5));
  }
  batched.send_batch(Address{1}, dsts, payload(5));

  EXPECT_EQ(singles.decisions_made(), batched.decisions_made());
  EXPECT_EQ(singles.stats().dropped.load(), batched.stats().dropped.load());
  EXPECT_EQ(singles.stats().duplicated.load(),
            batched.stats().duplicated.load());
  // Same per-destination outcomes, not just same totals.
  auto dst_multiset = [](const RecordingTransport& t) {
    std::vector<std::uint64_t> ids;
    ids.reserve(t.sent.size());
    for (const auto& s : t.sent) ids.push_back(s.dst.id);
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  EXPECT_EQ(dst_multiset(singles_inner), dst_multiset(batch_inner));
}

TEST(FaultShim, DelayHoldsDatagramUntilSchedulerFires) {
  sim::Scheduler sched;
  RecordingTransport inner;
  FaultShimConfig cfg;
  cfg.delay_min = 500;
  cfg.delay_max = 500;  // deterministic window
  FaultShimTransport shim(inner, cfg, &sched);
  shim.send(Address{1}, Address{2}, payload(9));
  EXPECT_TRUE(inner.sent.empty());  // held by the scheduler
  EXPECT_EQ(shim.stats().delayed.load(), 1u);
  sched.run_for(499);
  EXPECT_TRUE(inner.sent.empty());
  sched.run_for(2);
  ASSERT_EQ(inner.sent.size(), 1u);
  EXPECT_EQ(inner.sent[0].data, payload(9));
  EXPECT_EQ(shim.stats().forwarded.load(), 1u);
}

TEST(FaultShim, DelayWithoutSchedulerIsRejected) {
  RecordingTransport inner;
  FaultShimConfig cfg;
  cfg.delay_max = 100;
  EXPECT_THROW(FaultShimTransport(inner, cfg), std::invalid_argument);
  cfg.delay_max = 0;
  cfg.delay_min = 10;  // max < min
  sim::Scheduler sched;
  EXPECT_THROW(FaultShimTransport(inner, cfg, &sched),
               std::invalid_argument);
}

}  // namespace
}  // namespace horus::net
