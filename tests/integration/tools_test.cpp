// The Isis-style tools built on the public API (paper Sections 1/9/11):
// replicated data with state transfer, distributed locking with failover,
// primary-backup request sequencing, deterministic load balancing.
#include <gtest/gtest.h>

#include "../common/test_util.hpp"
#include "horus/tools/guaranteed_exec.hpp"
#include "horus/tools/load_balancer.hpp"
#include "horus/tools/lock_manager.hpp"
#include "horus/tools/primary_backup.hpp"
#include "horus/tools/replicated_map.hpp"

namespace horus::testing {
namespace {

using tools::LoadBalancer;
using tools::LockManager;
using tools::PrimaryBackup;
using tools::ReplicatedMap;

constexpr const char* kStack = "TOTAL:MBRSHIP:FRAG:NAK:COM";

HorusSystem::Options quiet() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  return o;
}

// ---------------------------------------------------------------------------
// ReplicatedMap
// ---------------------------------------------------------------------------

TEST(ReplicatedMapTool, ReplicasConvergeUnderConcurrentWrites) {
  HorusSystem::Options o;
  o.net.loss = 0.08;
  HorusSystem sys(o);
  auto& e1 = sys.create_endpoint(kStack);
  auto& e2 = sys.create_endpoint(kStack);
  auto& e3 = sys.create_endpoint(kStack);
  ReplicatedMap m1(e1, GroupId{1}), m2(e2, GroupId{1}), m3(e3, GroupId{1});
  m1.bootstrap();
  sys.run_for(100 * sim::kMillisecond);
  m2.join_via(e1.address());
  sys.run_for(sim::kSecond);
  m3.join_via(e1.address());
  sys.run_for(2 * sim::kSecond);

  m1.set("color", "red");
  m2.set("color", "blue");  // races with m1's write: order decided by TOTAL
  m3.set("shape", "round");
  m1.erase("never-there");
  sys.run_for(3 * sim::kSecond);

  EXPECT_EQ(m1.digest(), m2.digest());
  EXPECT_EQ(m2.digest(), m3.digest());
  EXPECT_TRUE(m1.get("color").has_value());
  EXPECT_EQ(*m1.get("shape"), "round");
}

TEST(ReplicatedMapTool, JoinerReceivesStateTransfer) {
  HorusSystem sys(quiet());
  auto& e1 = sys.create_endpoint(kStack);
  auto& e2 = sys.create_endpoint(kStack);
  ReplicatedMap m1(e1, GroupId{1});
  m1.bootstrap();
  sys.run_for(200 * sim::kMillisecond);
  // Accumulate state BEFORE the second replica exists.
  for (int i = 0; i < 20; ++i) {
    m1.set("k" + std::to_string(i), "v" + std::to_string(i));
  }
  sys.run_for(sim::kSecond);
  ASSERT_EQ(m1.version(), 20u);

  ReplicatedMap m2(e2, GroupId{1});
  m2.join_via(e1.address());
  sys.run_for(3 * sim::kSecond);
  ASSERT_TRUE(m2.ready()) << "snapshot never arrived";
  EXPECT_EQ(m2.digest(), m1.digest()) << "state transfer incomplete";
  EXPECT_EQ(*m2.get("k7"), "v7");
}

TEST(ReplicatedMapTool, WritesDuringJoinLandExactlyOnce) {
  HorusSystem sys(quiet());
  auto& e1 = sys.create_endpoint(kStack);
  auto& e2 = sys.create_endpoint(kStack);
  ReplicatedMap m1(e1, GroupId{1});
  m1.bootstrap();
  sys.run_for(200 * sim::kMillisecond);
  m1.set("pre", "1");
  sys.run_for(sim::kSecond);
  ReplicatedMap m2(e2, GroupId{1});
  m2.join_via(e1.address());
  // Keep writing while the join + snapshot are in flight.
  for (int i = 0; i < 10; ++i) {
    m1.set("during" + std::to_string(i), "x");
    sys.run_for(30 * sim::kMillisecond);
  }
  sys.run_for(3 * sim::kSecond);
  EXPECT_EQ(m2.digest(), m1.digest())
      << "ops raced the snapshot and were double- or un-applied";
}

TEST(ReplicatedMapTool, SurvivesReplicaCrash) {
  HorusSystem sys(quiet());
  auto& e1 = sys.create_endpoint(kStack);
  auto& e2 = sys.create_endpoint(kStack);
  auto& e3 = sys.create_endpoint(kStack);
  ReplicatedMap m1(e1, GroupId{1}), m2(e2, GroupId{1}), m3(e3, GroupId{1});
  m1.bootstrap();
  sys.run_for(100 * sim::kMillisecond);
  m2.join_via(e1.address());
  sys.run_for(sim::kSecond);
  m3.join_via(e1.address());
  sys.run_for(2 * sim::kSecond);
  m1.set("a", "1");
  sys.run_for(500 * sim::kMillisecond);
  sys.crash(e1);  // the founder (and current snapshot leader) dies
  sys.run_for(5 * sim::kSecond);
  m2.set("b", "2");
  sys.run_for(2 * sim::kSecond);
  EXPECT_EQ(m2.digest(), m3.digest());
  EXPECT_EQ(*m3.get("a"), "1");
  EXPECT_EQ(*m3.get("b"), "2");
}

// ---------------------------------------------------------------------------
// LockManager
// ---------------------------------------------------------------------------

struct LockWorld {
  explicit LockWorld(std::size_t n, HorusSystem::Options o = quiet())
      : sys(o) {
    for (std::size_t i = 0; i < n; ++i) {
      eps.push_back(&sys.create_endpoint(kStack));
      mgrs.push_back(std::make_unique<LockManager>(*eps[i], GroupId{2}));
    }
    mgrs[0]->bootstrap();
    sys.run_for(100 * sim::kMillisecond);
    for (std::size_t i = 1; i < n; ++i) {
      mgrs[i]->join_via(eps[0]->address());
      sys.run_for(500 * sim::kMillisecond);
    }
    sys.run_for(2 * sim::kSecond);
  }
  HorusSystem sys;
  std::vector<Endpoint*> eps;
  std::vector<std::unique_ptr<LockManager>> mgrs;
};

TEST(LockManagerTool, MutualExclusionAndFifoHandoff) {
  LockWorld w(3);
  std::vector<int> grant_order;
  for (std::size_t i = 0; i < 3; ++i) {
    w.mgrs[i]->on_granted([&grant_order, i](const std::string&) {
      grant_order.push_back(static_cast<int>(i));
    });
  }
  // All three request; requests are ordered by TOTAL.
  w.mgrs[0]->lock("m");
  w.mgrs[1]->lock("m");
  w.mgrs[2]->lock("m");
  w.sys.run_for(2 * sim::kSecond);
  // Exactly one holder, agreed by everyone.
  ASSERT_EQ(grant_order.size(), 1u);
  int first = grant_order[0];
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(w.mgrs[i]->holder("m"), w.eps[static_cast<std::size_t>(first)]->address());
  }
  EXPECT_EQ(w.mgrs[static_cast<std::size_t>(first)]->held_by_me("m"), true);
  // Release: the next queued requester is granted; then the last.
  w.mgrs[static_cast<std::size_t>(first)]->unlock("m");
  w.sys.run_for(2 * sim::kSecond);
  ASSERT_EQ(grant_order.size(), 2u);
  w.mgrs[static_cast<std::size_t>(grant_order[1])]->unlock("m");
  w.sys.run_for(2 * sim::kSecond);
  ASSERT_EQ(grant_order.size(), 3u);
  // All three distinct members got it exactly once.
  std::set<int> uniq(grant_order.begin(), grant_order.end());
  EXPECT_EQ(uniq.size(), 3u);
}

TEST(LockManagerTool, HolderCrashReleasesLock) {
  LockWorld w(3);
  bool granted_at_1 = false;
  w.mgrs[1]->on_granted([&](const std::string&) { granted_at_1 = true; });
  w.mgrs[2]->lock("res");
  w.sys.run_for(sim::kSecond);
  w.mgrs[1]->lock("res");  // queued behind member 2
  w.sys.run_for(sim::kSecond);
  ASSERT_EQ(w.mgrs[0]->holder("res"), w.eps[2]->address());
  ASSERT_FALSE(granted_at_1);
  // The holder dies; the view change must hand the lock to member 1.
  w.sys.crash(*w.eps[2]);
  w.sys.run_for(5 * sim::kSecond);
  EXPECT_TRUE(granted_at_1) << "lock stuck on a dead holder";
  EXPECT_EQ(w.mgrs[0]->holder("res"), w.eps[1]->address());
}

TEST(LockManagerTool, ManyLocksIndependent) {
  LockWorld w(2);
  w.mgrs[0]->lock("a");
  w.mgrs[1]->lock("b");
  w.sys.run_for(2 * sim::kSecond);
  EXPECT_TRUE(w.mgrs[0]->held_by_me("a"));
  EXPECT_TRUE(w.mgrs[1]->held_by_me("b"));
  EXPECT_FALSE(w.mgrs[1]->held_by_me("a"));
}

// ---------------------------------------------------------------------------
// PrimaryBackup
// ---------------------------------------------------------------------------

TEST(PrimaryBackupTool, RequestsExecuteEverywhereInOrder) {
  HorusSystem sys(quiet());
  std::vector<Endpoint*> eps;
  std::vector<std::vector<std::string>> logs(3);
  std::vector<std::unique_ptr<PrimaryBackup>> pbs;
  for (std::size_t i = 0; i < 3; ++i) {
    eps.push_back(&sys.create_endpoint(kStack));
    auto* log = &logs[i];
    pbs.push_back(std::make_unique<PrimaryBackup>(
        *eps[i], GroupId{3},
        [log](const std::string& req) { log->push_back(req); }));
  }
  pbs[0]->bootstrap();
  sys.run_for(100 * sim::kMillisecond);
  pbs[1]->join_via(eps[0]->address());
  sys.run_for(sim::kSecond);
  pbs[2]->join_via(eps[0]->address());
  sys.run_for(2 * sim::kSecond);
  EXPECT_TRUE(pbs[0]->i_am_primary());
  // Requests from every member, including non-primaries.
  pbs[1]->submit("from-backup-1");
  pbs[0]->submit("from-primary");
  pbs[2]->submit("from-backup-2");
  sys.run_for(3 * sim::kSecond);
  ASSERT_EQ(logs[0].size(), 3u);
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_EQ(logs[1], logs[2]);
}

TEST(PrimaryBackupTool, FailoverExecutesExactlyOnce) {
  HorusSystem sys(quiet());
  std::vector<Endpoint*> eps;
  std::vector<std::vector<std::string>> logs(3);
  std::vector<std::unique_ptr<PrimaryBackup>> pbs;
  for (std::size_t i = 0; i < 3; ++i) {
    eps.push_back(&sys.create_endpoint(kStack));
    auto* log = &logs[i];
    pbs.push_back(std::make_unique<PrimaryBackup>(
        *eps[i], GroupId{3},
        [log](const std::string& req) { log->push_back(req); }));
  }
  pbs[0]->bootstrap();
  sys.run_for(100 * sim::kMillisecond);
  pbs[1]->join_via(eps[0]->address());
  sys.run_for(sim::kSecond);
  pbs[2]->join_via(eps[0]->address());
  sys.run_for(2 * sim::kSecond);
  pbs[1]->submit("settled");
  sys.run_for(sim::kSecond);
  // Kill the primary, then submit while the old primary's link is dead:
  // the request must survive the failover and execute once at survivors.
  sys.crash(*eps[0]);
  pbs[2]->submit("across-failover");
  sys.run_for(8 * sim::kSecond);
  EXPECT_TRUE(pbs[1]->i_am_primary()) << "oldest survivor should lead";
  for (std::size_t i : {1u, 2u}) {
    int count = 0;
    for (const auto& r : logs[i]) count += r == "across-failover" ? 1 : 0;
    EXPECT_EQ(count, 1) << "member " << i << " executed "
                        << count << " times";
  }
  EXPECT_EQ(logs[1], logs[2]);
}

// ---------------------------------------------------------------------------
// GuaranteedExecution
// ---------------------------------------------------------------------------

TEST(GuaranteedExecTool, TasksRunExactlyOnceWhenQuiet) {
  HorusSystem sys(quiet());
  std::vector<Endpoint*> eps;
  std::map<std::string, int> runs;  // task -> times executed (anywhere)
  std::vector<std::unique_ptr<tools::GuaranteedExecution>> ges;
  for (std::size_t i = 0; i < 3; ++i) {
    eps.push_back(&sys.create_endpoint(kStack));
    ges.push_back(std::make_unique<tools::GuaranteedExecution>(
        *eps[i], GroupId{4},
        [&runs](const std::string& id, const std::string&) { ++runs[id]; }));
  }
  ges[0]->bootstrap();
  sys.run_for(100 * sim::kMillisecond);
  ges[1]->join_via(eps[0]->address());
  sys.run_for(sim::kSecond);
  ges[2]->join_via(eps[0]->address());
  sys.run_for(2 * sim::kSecond);
  for (int t = 0; t < 12; ++t) {
    ges[static_cast<std::size_t>(t % 3)]->submit("task" + std::to_string(t),
                                                 "payload");
  }
  sys.run_for(3 * sim::kSecond);
  ASSERT_EQ(runs.size(), 12u) << "some task never ran";
  for (auto& [id, n] : runs) EXPECT_EQ(n, 1) << id;
  for (auto& ge : ges) EXPECT_EQ(ge->pending(), 0u);
}

TEST(GuaranteedExecTool, OwnerCrashReassignsAndReruns) {
  HorusSystem sys(quiet());
  std::vector<Endpoint*> eps;
  std::map<std::string, int> runs;
  std::map<std::string, std::uint64_t> ran_at;  // task -> executor address
  std::vector<std::unique_ptr<tools::GuaranteedExecution>> ges;
  // The victim executes tasks but never announces completion (its crash
  // beats the DONE cast): simulate by crashing it the moment it runs.
  for (std::size_t i = 0; i < 3; ++i) {
    eps.push_back(&sys.create_endpoint(kStack));
    Endpoint* ep = eps[i];
    ges.push_back(std::make_unique<tools::GuaranteedExecution>(
        *eps[i], GroupId{4},
        [&runs, &ran_at, ep](const std::string& id, const std::string&) {
          ++runs[id];
          ran_at[id] = ep->address().id;
        }));
  }
  ges[0]->bootstrap();
  sys.run_for(100 * sim::kMillisecond);
  ges[1]->join_via(eps[0]->address());
  sys.run_for(sim::kSecond);
  ges[2]->join_via(eps[0]->address());
  sys.run_for(2 * sim::kSecond);
  // Find a task id owned by member 2, then crash member 2 at the instant
  // it would execute (before its DONE can propagate: total link loss).
  tools::LoadBalancer lb(eps[0]->group(GroupId{4}).view());
  std::string victim_task;
  for (int t = 0; t < 100; ++t) {
    std::string id = "probe" + std::to_string(t);
    if (lb.owner(id) == eps[2]->address()) {
      victim_task = id;
      break;
    }
  }
  ASSERT_FALSE(victim_task.empty());
  // Cut ALL of member 2's outbound links so its DONE never leaves, then
  // submit and crash it.
  sim::LinkParams dead;
  dead.loss = 1.0;
  for (std::size_t i = 0; i < 3; ++i) {
    sys.net().set_link_params(eps[2]->address().id, eps[i]->address().id, dead);
  }
  ges[0]->submit(victim_task, "work");
  sys.run_for(sim::kSecond);
  sys.crash(*eps[2]);
  sys.run_for(8 * sim::kSecond);
  // A survivor re-executed it and everyone agrees it is done.
  EXPECT_TRUE(ges[0]->completed(victim_task))
      << "task died with its owner (guaranteed execution violated)";
  EXPECT_TRUE(ges[1]->completed(victim_task));
  EXPECT_NE(ran_at[victim_task], eps[2]->address().id)
      << "completion must come from a survivor";
}

// ---------------------------------------------------------------------------
// LoadBalancer
// ---------------------------------------------------------------------------

TEST(LoadBalancerTool, DeterministicAndBalanced) {
  View v(ViewId{1, Address{1}},
         {Address{1}, Address{2}, Address{3}, Address{4}});
  LoadBalancer lb1(v), lb2(v);
  std::map<std::uint64_t, int> tally;
  for (int i = 0; i < 4000; ++i) {
    std::string key = "job" + std::to_string(i);
    auto o1 = lb1.owner(key);
    auto o2 = lb2.owner(key);
    ASSERT_TRUE(o1.has_value());
    EXPECT_EQ(o1, o2) << "owners must agree across members";
    ++tally[o1->id];
  }
  ASSERT_EQ(tally.size(), 4u) << "some member got no work at all";
  for (auto& [id, n] : tally) {
    EXPECT_GT(n, 700) << "member " << id << " underloaded";
    EXPECT_LT(n, 1300) << "member " << id << " overloaded";
  }
}

TEST(LoadBalancerTool, MinimalMovementOnViewChange) {
  View v4(ViewId{1, Address{1}},
          {Address{1}, Address{2}, Address{3}, Address{4}});
  View v3(ViewId{2, Address{1}}, {Address{1}, Address{2}, Address{3}});
  LoadBalancer before(v4), after(v3);
  int moved_among_survivors = 0, total_survivor_keys = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string key = "k" + std::to_string(i);
    Address o1 = *before.owner(key);
    Address o2 = *after.owner(key);
    if (o1.id != 4) {
      ++total_survivor_keys;
      if (o1 != o2) ++moved_among_survivors;
    } else {
      EXPECT_NE(o2.id, 4u) << "departed member still owns keys";
    }
  }
  // Rendezvous hashing: keys owned by survivors do not move at all.
  EXPECT_EQ(moved_among_survivors, 0)
      << "of " << total_survivor_keys << " survivor keys";
}

}  // namespace
}  // namespace horus::testing
