// Partition and merge behaviour (Sections 5 and 9).
//
// Exercises: extended virtual synchrony (both sides of a partition keep
// making progress in their own views), the MERGE layer's automatic
// healing, the merge downcall, and the Isis-style primary-partition
// policy (the minority blocks).
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

HorusSystem::Options quiet() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  return o;
}

TEST(Partition, ExtendedVsBothSidesProgress) {
  World w(4, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  // Split {0,1} | {2,3}.
  w.sys.partition({{w.eps[0], w.eps[1]}, {w.eps[2], w.eps[3]}});
  w.sys.run_for(5 * sim::kSecond);
  // Each side installed a 2-member view of its own partition.
  EXPECT_EQ(w.logs[0].views.back().size(), 2u);
  EXPECT_EQ(w.logs[2].views.back().size(), 2u);
  EXPECT_TRUE(w.logs[0].views.back().contains(w.eps[1]->address()));
  EXPECT_TRUE(w.logs[2].views.back().contains(w.eps[3]->address()));
  // Both sides can still multicast within their partition.
  std::size_t before0 = w.logs[1].casts.size();
  std::size_t before2 = w.logs[3].casts.size();
  w.eps[0]->cast(kGroup, Message::from_string("left"));
  w.eps[2]->cast(kGroup, Message::from_string("right"));
  w.sys.run_for(2 * sim::kSecond);
  EXPECT_GT(w.logs[1].casts.size(), before0);
  EXPECT_GT(w.logs[3].casts.size(), before2);
  // And the partitions never leak messages across.
  for (const auto& d : w.logs[3].casts) EXPECT_NE(d.payload, "left");
  for (const auto& d : w.logs[1].casts) EXPECT_NE(d.payload, "right");
}

TEST(Partition, ManualMergeReunites) {
  World w(4, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.sys.partition({{w.eps[0], w.eps[1]}, {w.eps[2], w.eps[3]}});
  w.sys.run_for(5 * sim::kSecond);
  ASSERT_EQ(w.logs[0].views.back().size(), 2u);
  ASSERT_EQ(w.logs[2].views.back().size(), 2u);
  // Heal the network and issue the merge downcall from one side.
  w.sys.heal();
  w.sys.run_for(sim::kSecond);
  w.eps[2]->merge(kGroup, w.eps[0]->address());
  w.sys.run_for(8 * sim::kSecond);
  for (int i = 0; i < 4; ++i) {
    ASSERT_FALSE(w.logs[i].views.empty());
    EXPECT_EQ(w.logs[i].views.back().size(), 4u)
        << "member " << i << " still in " << w.logs[i].views.back().to_string();
  }
  EXPECT_EQ(w.logs[0].views.back(), w.logs[2].views.back());
  // The merged group is live.
  std::size_t before = w.logs[3].casts.size();
  w.eps[0]->cast(kGroup, Message::from_string("reunited"));
  w.sys.run_for(2 * sim::kSecond);
  EXPECT_GT(w.logs[3].casts.size(), before);
}

TEST(Partition, MergeLayerHealsAutomatically) {
  World w(4, "MERGE:MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.sys.partition({{w.eps[0], w.eps[1]}, {w.eps[2], w.eps[3]}});
  w.sys.run_for(5 * sim::kSecond);
  ASSERT_EQ(w.logs[0].views.back().size(), 2u);
  ASSERT_EQ(w.logs[2].views.back().size(), 2u);
  // Heal the network; MERGE's probes must reunite the group on their own
  // (property P16: automatic view merging).
  w.sys.heal();
  w.sys.run_for(15 * sim::kSecond);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(w.logs[i].views.back().size(), 4u)
        << "member " << i << " still in " << w.logs[i].views.back().to_string();
  }
}

TEST(Partition, PrimaryPartitionMinorityBlocks) {
  HorusSystem::Options o = quiet();
  o.stack.partition_policy = PartitionPolicy::kPrimaryPartition;
  World w(5, "MBRSHIP:FRAG:NAK:COM", o);
  w.form_group();
  ASSERT_TRUE(w.converged());
  // Split 3 | 2: the 3-side keeps the primary, the 2-side blocks.
  w.sys.partition({{w.eps[0], w.eps[1], w.eps[2]}, {w.eps[3], w.eps[4]}});
  w.sys.run_for(5 * sim::kSecond);
  // Majority side: casts still flow.
  std::size_t before = w.logs[1].casts.size();
  w.eps[0]->cast(kGroup, Message::from_string("maj"));
  w.sys.run_for(2 * sim::kSecond);
  EXPECT_GT(w.logs[1].casts.size(), before);
  // Minority side: casting produces a SYSTEM_ERROR and no delivery.
  bool errored = false;
  w.eps[3]->on_upcall([&](Group&, UpEvent& ev) {
    if (ev.type == UpType::kSystemError) errored = true;
  });
  std::size_t before4 = w.logs[4].casts.size();
  w.eps[3]->cast(kGroup, Message::from_string("min"));
  w.sys.run_for(2 * sim::kSecond);
  EXPECT_TRUE(errored) << "minority cast did not report an error";
  EXPECT_EQ(w.logs[4].casts.size(), before4) << "minority made progress";
}

TEST(Partition, PrimaryPartitionMergeUnblocks) {
  HorusSystem::Options o = quiet();
  o.stack.partition_policy = PartitionPolicy::kPrimaryPartition;
  World w(5, "MERGE:MBRSHIP:FRAG:NAK:COM", o);
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.sys.partition({{w.eps[0], w.eps[1], w.eps[2]}, {w.eps[3], w.eps[4]}});
  w.sys.run_for(5 * sim::kSecond);
  w.sys.heal();
  w.sys.run_for(20 * sim::kSecond);
  // After healing everyone is back in one 5-member view, and the formerly
  // blocked members can cast again.
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(w.logs[i].views.back().size(), 5u) << "member " << i;
  }
  std::size_t before = w.logs[0].casts.size();
  w.eps[4]->cast(kGroup, Message::from_string("unblocked"));
  w.sys.run_for(2 * sim::kSecond);
  EXPECT_GT(w.logs[0].casts.size(), before);
}

TEST(Partition, GracefulLeave) {
  World w(3, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.eps[2]->leave(kGroup);
  w.sys.run_for(3 * sim::kSecond);
  EXPECT_EQ(w.logs[2].exits, 1) << "leaver did not get EXIT";
  for (int i : {0, 1}) {
    const View& v = w.logs[i].views.back();
    EXPECT_EQ(v.size(), 2u) << "member " << i;
    EXPECT_FALSE(v.contains(w.eps[2]->address()));
  }
}

TEST(Partition, JoinAfterLeaveRejoins) {
  World w(3, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.eps[2]->leave(kGroup);
  w.sys.run_for(3 * sim::kSecond);
  ASSERT_EQ(w.logs[0].views.back().size(), 2u);
  // Rejoin through a current member.
  w.eps[2]->join(kGroup, w.eps[0]->address());
  w.sys.run_for(3 * sim::kSecond);
  EXPECT_EQ(w.logs[0].views.back().size(), 3u);
  EXPECT_EQ(w.logs[2].views.back().size(), 3u);
}

}  // namespace
}  // namespace horus::testing
