// End-to-end smoke tests: the shortest paths through the system, one per
// stack family. If these fail, debug here before anything else.
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

TEST(Smoke, RawComDelivers) {
  // The minimal stack: COM over the simulated network, app-managed view.
  HorusSystem::Options opts;
  opts.net.loss = 0.0;
  World w(2, "COM", opts);
  w.eps[0]->join(kGroup);
  w.eps[1]->join(kGroup);
  w.eps[0]->install_view(kGroup, {w.eps[0]->address(), w.eps[1]->address()});
  w.eps[1]->install_view(kGroup, {w.eps[0]->address(), w.eps[1]->address()});
  w.sys.run_for(10 * sim::kMillisecond);
  w.eps[0]->cast(kGroup, Message::from_string("hello"));
  w.sys.run_for(50 * sim::kMillisecond);
  ASSERT_EQ(w.logs[1].casts.size(), 1u);
  EXPECT_EQ(w.logs[1].casts[0].payload, "hello");
  EXPECT_EQ(w.logs[1].casts[0].source, w.eps[0]->address());
  // The sender delivers its own multicast too.
  ASSERT_EQ(w.logs[0].casts.size(), 1u);
}

TEST(Smoke, NakComDeliversInOrderUnderLoss) {
  HorusSystem::Options opts;
  opts.net.loss = 0.2;
  World w(2, "NAK:COM", opts);
  w.eps[0]->join(kGroup);
  w.eps[1]->join(kGroup);
  std::vector<Address> both = {w.eps[0]->address(), w.eps[1]->address()};
  w.eps[0]->install_view(kGroup, both);
  w.eps[1]->install_view(kGroup, both);
  w.sys.run_for(10 * sim::kMillisecond);
  for (int i = 0; i < 50; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("m" + std::to_string(i)));
  }
  w.sys.run_for(3 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[i], "m" + std::to_string(i));
}

TEST(Smoke, MbrshipGroupForms) {
  World w(3, "MBRSHIP:FRAG:NAK:COM");
  w.form_group();
  ASSERT_TRUE(w.converged()) << "views did not converge";
  // All members ended in the same view.
  View last = w.logs[0].views.back();
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(w.logs[i].views.back(), last) << "member " << i;
  }
  EXPECT_EQ(last.size(), 3u);
}

TEST(Smoke, MbrshipCastReachesAll) {
  World w(3, "MBRSHIP:FRAG:NAK:COM");
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.eps[1]->cast(kGroup, Message::from_string("ping"));
  w.sys.run_for(sim::kSecond);
  for (std::size_t i = 0; i < 3; ++i) {
    auto got = w.logs[i].casts_from(w.eps[1]->address());
    ASSERT_EQ(got.size(), 1u) << "member " << i;
    EXPECT_EQ(got[0], "ping");
  }
}

TEST(Smoke, FullStackTotalOrderDelivers) {
  World w(3, "TOTAL:MBRSHIP:FRAG:NAK:COM");
  w.form_group();
  ASSERT_TRUE(w.converged());
  for (std::size_t i = 0; i < 3; ++i) {
    w.eps[i]->cast(kGroup, Message::from_string("from" + std::to_string(i)));
  }
  w.sys.run_for(3 * sim::kSecond);
  // Everyone delivers all three messages, in the same order.
  auto ref = w.logs[0].all_cast_payloads();
  ASSERT_EQ(ref.size(), 3u);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(w.logs[i].all_cast_payloads(), ref) << "member " << i;
  }
}

TEST(Smoke, LargeMessageFragmentsAndReassembles) {
  World w(2, "MBRSHIP:FRAG:NAK:COM");
  w.form_group();
  ASSERT_TRUE(w.converged());
  std::string big(20'000, 'x');
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>('a' + i % 26);
  w.eps[0]->cast(kGroup, Message::from_string(big));
  w.sys.run_for(2 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], big);
}

}  // namespace
}  // namespace horus::testing
