// Property-based virtual synchrony tests (Section 5's guarantees), swept
// over seeds, group sizes and loss rates with randomized crash injection.
//
// Invariants checked (DESIGN.md section 4):
//  * view agreement: survivors install the same sequence of views;
//  * same-set delivery: members passing from view V to V' delivered the
//    same multicast set while in V;
//  * FIFO per sender; no duplicates; no spoofed senders.
#include <algorithm>
#include <set>

#include "../common/test_util.hpp"
#include "horus/util/rng.hpp"

namespace horus::testing {
namespace {

struct SweepParam {
  std::uint64_t seed;
  std::size_t members;
  double loss;
  int crashes;
  const char* stack = "MBRSHIP:FRAG:NAK:COM";
};

void PrintTo(const SweepParam& p, std::ostream* os) {
  *os << "seed" << p.seed << "_n" << p.members << "_loss" << int(p.loss * 100)
      << "_crash" << p.crashes
      << (std::string(p.stack).find("VSS") != std::string::npos ? "_vssbms"
                                                                : "");
}

class VirtualSynchronyTest : public ::testing::TestWithParam<SweepParam> {};

// Tag each delivery with the view it was delivered in, per member.
struct ViewScopedLog {
  struct Epoch {
    ViewId view;
    std::vector<std::pair<Address, std::uint64_t>> delivered;  // (src, vseq)
  };
  std::vector<Epoch> epochs;
  bool exited = false;

  void attach(Endpoint& ep) {
    ep.on_upcall([this](Group& g, UpEvent& ev) {
      if (ev.type == UpType::kView) {
        epochs.push_back({ev.view.id(), {}});
      } else if (ev.type == UpType::kCast) {
        if (epochs.empty()) {
          // Deliveries that complete the *previous* view arrive just before
          // our first VIEW upcall; attribute them to a pre-view epoch.
          epochs.push_back({g.view().id(), {}});
        }
        epochs.back().delivered.emplace_back(ev.source, ev.msg_id);
      } else if (ev.type == UpType::kExit) {
        exited = true;
      }
    });
  }
};

TEST_P(VirtualSynchronyTest, InvariantsHoldUnderCrashes) {
  const SweepParam p = GetParam();
  HorusSystem::Options opts;
  opts.seed = p.seed;
  opts.net.loss = p.loss;
  World w(p.members, p.stack, opts);
  std::vector<ViewScopedLog> vlogs(p.members);
  for (std::size_t i = 0; i < p.members; ++i) vlogs[i].attach(*w.eps[i]);
  w.form_group(4 * sim::kSecond);

  Rng rng(p.seed ^ 0xc4a5);
  std::set<std::size_t> crashed;
  // Interleave casting and crashing.
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < p.members; ++i) {
      if (crashed.contains(i)) continue;
      w.eps[i]->cast(kGroup, Message::from_string(
                                 "r" + std::to_string(round) + "m" + std::to_string(i)));
    }
    if (round == 3 || round == 6) {
      if (static_cast<int>(crashed.size()) < p.crashes) {
        // Crash a random live non-zero member (keep 0 alive as an anchor).
        std::size_t victim = 1 + rng.next_below(p.members - 1);
        if (!crashed.contains(victim)) {
          crashed.insert(victim);
          w.sys.crash(*w.eps[victim]);
        }
      }
    }
    w.sys.run_for(200 * sim::kMillisecond);
  }
  w.sys.run_for(8 * sim::kSecond);  // settle: flushes, retransmissions

  // --- Invariant 1: survivors agree on the final view, and it excludes
  // the crashed members.
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < p.members; ++i) {
    if (!crashed.contains(i) && !vlogs[i].exited) survivors.push_back(i);
  }
  ASSERT_FALSE(survivors.empty());
  ASSERT_FALSE(vlogs[survivors[0]].epochs.empty());
  ViewId final_view = vlogs[survivors[0]].epochs.back().view;
  for (std::size_t i : survivors) {
    ASSERT_FALSE(vlogs[i].epochs.empty()) << "member " << i;
    EXPECT_EQ(vlogs[i].epochs.back().view, final_view) << "member " << i;
  }

  // --- Invariant 2 (virtual synchrony): for every view id, all survivors
  // that passed through that view delivered exactly the same message set
  // in it, in the same per-sender order.
  std::map<std::uint64_t, std::map<std::size_t, std::vector<std::pair<Address, std::uint64_t>>>>
      by_view;
  for (std::size_t i : survivors) {
    for (const auto& e : vlogs[i].epochs) {
      auto& v = by_view[e.view.seq][i];
      v.insert(v.end(), e.delivered.begin(), e.delivered.end());
    }
  }
  for (auto& [vseq, members] : by_view) {
    if (members.size() < 2) continue;
    // Completed views only: if this is some member's latest epoch, the
    // view may still be live mid-delivery -- only compare views that every
    // participant has moved past.
    bool completed = true;
    for (auto& [i, deliveries] : members) {
      if (vlogs[i].epochs.back().view.seq == vseq) completed = false;
    }
    if (!completed) continue;
    auto reference_sets = [&](const std::vector<std::pair<Address, std::uint64_t>>& d) {
      std::set<std::pair<std::uint64_t, std::uint64_t>> s;
      for (auto& [a, id] : d) s.insert({a.id, id});
      return s;
    };
    auto it = members.begin();
    auto ref = reference_sets(it->second);
    for (++it; it != members.end(); ++it) {
      EXPECT_EQ(reference_sets(it->second), ref)
          << "view " << vseq << ": member " << it->first
          << " delivered a different message set (virtual synchrony violated)";
    }
  }

  // --- Invariant 3: FIFO per sender within each member's whole history,
  // and no duplicates.
  for (std::size_t i : survivors) {
    std::map<std::pair<std::uint64_t, Address>, std::uint64_t> last;  // (view, src)
    std::set<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> seen;
    for (const auto& e : vlogs[i].epochs) {
      for (auto& [src, vseq] : e.delivered) {
        auto key = std::make_tuple(e.view.seq, src.id, vseq);
        EXPECT_TRUE(seen.insert(key).second)
            << "duplicate delivery at member " << i;
        std::uint64_t& prev = last[{e.view.seq, src}];
        EXPECT_GT(vseq, prev) << "FIFO violation at member " << i;
        prev = vseq;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VirtualSynchronyTest,
    ::testing::Values(
        SweepParam{1, 3, 0.0, 1}, SweepParam{2, 3, 0.05, 1},
        SweepParam{3, 4, 0.0, 1}, SweepParam{4, 4, 0.1, 1},
        SweepParam{5, 5, 0.02, 2}, SweepParam{6, 5, 0.1, 2},
        SweepParam{7, 6, 0.05, 2}, SweepParam{8, 6, 0.0, 3},
        SweepParam{9, 7, 0.02, 2}, SweepParam{10, 8, 0.05, 3},
        SweepParam{11, 4, 0.15, 1}, SweepParam{12, 5, 0.15, 2},
        // The decomposed membership must satisfy the same invariants.
        SweepParam{13, 3, 0.0, 1, "VSS:BMS:FRAG:NAK:COM"},
        SweepParam{14, 4, 0.05, 1, "VSS:BMS:FRAG:NAK:COM"},
        SweepParam{15, 5, 0.1, 2, "VSS:BMS:FRAG:NAK:COM"},
        SweepParam{16, 6, 0.05, 2, "VSS:BMS:FRAG:NAK:COM"}),
    [](const auto& info) {
      std::ostringstream os;
      PrintTo(info.param, &os);
      return os.str();
    });

}  // namespace
}  // namespace horus::testing
