// The exact scenario of the paper's Figure 2:
//
//   "This picture shows four processes: A, B, C, and D. D crashes right
//    after sending a message M, and only C received a copy. After the
//    crash is detected, A starts the flush protocol by multicasting to B
//    and C. C sends a copy of M to A, which forwards it to B. After A has
//    received replies from everyone, it installs a new view by
//    multicasting."
//
// The virtual synchrony obligation: even though D crashed and only C held
// M, every surviving member (A, B, C) must deliver M before installing the
// view that excludes D.
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

class Fig2Test : public ::testing::Test {
 protected:
  // A quiet network (no random loss) so we can surgically control who
  // receives M, exactly as in the figure.
  Fig2Test() : w(4, "MBRSHIP:FRAG:NAK:COM", quiet()) {}

  static HorusSystem::Options quiet() {
    HorusSystem::Options o;
    o.net.loss = 0.0;
    return o;
  }

  void form() {
    w.form_group();
    ASSERT_TRUE(w.converged());
  }

  World w;
};

TEST_F(Fig2Test, UnstableMessageSurvivesSenderCrash) {
  form();
  Endpoint* A = w.eps[0];
  Endpoint* B = w.eps[1];
  Endpoint* C = w.eps[2];
  Endpoint* D = w.eps[3];

  // D sends M, but the datagrams to A and B are lost; only C (and D
  // itself, but it is about to die) receive a copy. We use total loss on
  // the D->A and D->B links for the instant of the send.
  sim::LinkParams dead;
  dead.loss = 1.0;
  w.sys.net().set_link_params(D->address().id, A->address().id, dead);
  w.sys.net().set_link_params(D->address().id, B->address().id, dead);
  D->cast(kGroup, Message::from_string("M"));
  // Let the datagrams fly (C's copy arrives; A's and B's are dropped),
  // then crash D before any retransmission can happen.
  w.sys.run_for(1 * sim::kMillisecond);
  w.sys.crash(*D);

  // The crash is detected, A (the oldest survivor) coordinates the flush,
  // C contributes its copy of M, and the new view excludes D.
  w.sys.run_for(5 * sim::kSecond);

  for (int i : {0, 1, 2}) {
    SCOPED_TRACE("member " + std::to_string(i));
    // Everyone delivered M exactly once...
    auto from_d = w.logs[i].casts_from(D->address());
    ASSERT_EQ(from_d.size(), 1u);
    EXPECT_EQ(from_d[0], "M");
    // ...and installed a 3-member view excluding D.
    ASSERT_FALSE(w.logs[i].views.empty());
    const View& v = w.logs[i].views.back();
    EXPECT_EQ(v.size(), 3u);
    EXPECT_FALSE(v.contains(D->address()));
  }
  // All survivors agree on the final view.
  EXPECT_EQ(w.logs[0].views.back(), w.logs[1].views.back());
  EXPECT_EQ(w.logs[1].views.back(), w.logs[2].views.back());
}

TEST_F(Fig2Test, CoordinatorIsOldestSurvivor) {
  form();
  // The view orders members by seniority; rank 0 is the bootstrap member.
  const View& v = w.logs[0].views.back();
  EXPECT_EQ(v.oldest(), w.eps[0]->address());
  // Crash the oldest: the flush must still complete, coordinated by the
  // next-oldest (member 1), and the installed view records it.
  w.sys.crash(*w.eps[0]);
  w.sys.run_for(5 * sim::kSecond);
  for (int i : {1, 2, 3}) {
    ASSERT_FALSE(w.logs[i].views.empty());
    const View& nv = w.logs[i].views.back();
    EXPECT_EQ(nv.size(), 3u);
    EXPECT_EQ(nv.oldest(), w.eps[1]->address());
    EXPECT_EQ(nv.id().coordinator, w.eps[1]->address());
  }
}

TEST_F(Fig2Test, MessageDeliveredBeforeViewChange) {
  form();
  Endpoint* D = w.eps[3];
  // Record interleaving of deliveries and views at member B.
  std::vector<std::string> events;
  w.eps[1]->on_upcall([&](Group&, UpEvent& ev) {
    if (ev.type == UpType::kCast) events.push_back("cast:" + ev.msg.payload_string());
    if (ev.type == UpType::kView) events.push_back("view:" + std::to_string(ev.view.size()));
  });
  sim::LinkParams dead;
  dead.loss = 1.0;
  w.sys.net().set_link_params(D->address().id, w.eps[0]->address().id, dead);
  w.sys.net().set_link_params(D->address().id, w.eps[1]->address().id, dead);
  D->cast(kGroup, Message::from_string("M"));
  w.sys.run_for(1 * sim::kMillisecond);
  w.sys.crash(*D);
  w.sys.run_for(5 * sim::kSecond);
  // B must see M strictly before the 3-member view: "messages sent in the
  // current view are delivered to the surviving members of the current
  // view".
  auto cast_it = std::find(events.begin(), events.end(), "cast:M");
  auto view_it = std::find(events.begin(), events.end(), "view:3");
  ASSERT_NE(cast_it, events.end()) << "M never delivered at B";
  ASSERT_NE(view_it, events.end()) << "view change never happened at B";
  EXPECT_LT(cast_it - events.begin(), view_it - events.begin())
      << "M was delivered after the view that excludes its sender";
}

TEST_F(Fig2Test, StableMessagesAreNotRedelivered) {
  form();
  // A message that everyone already has must not be delivered twice by the
  // flush.
  w.eps[3]->cast(kGroup, Message::from_string("early"));
  w.sys.run_for(sim::kSecond);  // fully delivered and gossip-stabilized
  w.sys.crash(*w.eps[3]);
  w.sys.run_for(5 * sim::kSecond);
  for (int i : {0, 1, 2}) {
    auto got = w.logs[i].casts_from(w.eps[3]->address());
    EXPECT_EQ(got.size(), 1u) << "member " << i << " saw a redelivery";
  }
}

}  // namespace
}  // namespace horus::testing
