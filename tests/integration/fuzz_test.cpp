// Adversarial input robustness: blast malformed datagrams at live stacks.
//
// Every layer's decode path must treat the wire as hostile: random bytes,
// truncated real datagrams, bit-flipped real datagrams. Nothing may crash,
// and (for the checksummed/authenticated stacks) nothing garbled may ever
// surface as an application delivery.
#include <set>

#include "../common/test_util.hpp"
#include "horus/util/rng.hpp"

namespace horus::testing {
namespace {

class FuzzTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FuzzTest, RandomGarbageNeverCrashes) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  World w(2, GetParam(), o);
  bool has_mbrship = std::string(GetParam()).find("MBRSHIP") != std::string::npos;
  if (has_mbrship) {
    w.form_group();
  } else {
    std::vector<Address> members = {w.eps[0]->address(), w.eps[1]->address()};
    for (auto* ep : w.eps) {
      ep->join(kGroup);
      ep->install_view(kGroup, members);
    }
    w.sys.run_for(10 * sim::kMillisecond);
  }
  // Inject pure-random datagrams straight at endpoint 1, from a ghost
  // sender address, interleaved with legitimate traffic.
  Rng rng(0xf022);
  for (int i = 0; i < 500; ++i) {
    Bytes junk(1 + rng.next_below(200), 0);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    w.sys.net().send(999, w.eps[1]->address().id, junk);
    if (i % 50 == 0) {
      w.eps[0]->cast(kGroup, Message::from_string("legit" + std::to_string(i)));
    }
    w.sys.run_for(sim::kMillisecond);
  }
  w.sys.run_for(2 * sim::kSecond);
  // Legitimate traffic still flowed, in order.
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 10u) << "legitimate traffic was disrupted";
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], "legit" + std::to_string(i * 50));
  }
}

TEST_P(FuzzTest, TruncatedAndFlippedRealDatagramsNeverCrash) {
  // Capture real datagrams by replaying the same seed twice is overkill;
  // instead corrupt in the network itself at a violent rate while also
  // truncating via a tiny MTU on a parallel link... simplest faithful
  // approach: run traffic through a network that corrupts heavily, then
  // assert clean deliveries only.
  HorusSystem::Options o;
  o.net.loss = 0.0;
  o.net.corrupt = 0.6;
  World w(2, GetParam(), o);
  bool has_mbrship = std::string(GetParam()).find("MBRSHIP") != std::string::npos;
  std::vector<Address> members = {w.eps[0]->address(), w.eps[1]->address()};
  if (has_mbrship) {
    // Form the group on a clean network first, then turn corruption on.
    sim::LinkParams clean = o.net;
    clean.corrupt = 0.0;
    w.sys.net().set_default_params(clean);
    w.form_group();
    ASSERT_TRUE(w.converged());
    w.sys.net().set_default_params(o.net);
  } else {
    for (auto* ep : w.eps) {
      ep->join(kGroup);
      ep->install_view(kGroup, members);
    }
    w.sys.run_for(10 * sim::kMillisecond);
  }
  for (int i = 0; i < 100; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("payload-abcdefghij"));
    w.sys.run_for(10 * sim::kMillisecond);
  }
  w.sys.run_for(10 * sim::kSecond);
  // Whatever arrived must be byte-exact (checksummed stacks drop the rest).
  for (const auto& d : w.logs[1].casts) {
    EXPECT_EQ(d.payload, "payload-abcdefghij");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, FuzzTest,
    ::testing::Values("COM", "NAK:COM", "FRAG:NAK:COM",
                      "MBRSHIP:FRAG:NAK:COM",
                      "TOTAL:MBRSHIP:FRAG:NAK:COM",
                      "COMPRESS:ENCRYPT:SIGN:NAK:CHKSUM:RAWCOM"),
    [](const auto& info) {
      std::string n = info.param;
      for (auto& c : n) {
        if (c == ':') c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace horus::testing
