// Cross-product sweep: every interesting stack x header codec x network
// condition must deliver its advertised properties. This is the "LEGO"
// claim tested wholesale -- the stacks below were never special-cased
// anywhere; they are composed at run time from the registry.
#include <set>

#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

struct StackCase {
  const char* spec;
  bool ordered_total;   // all members must agree on one delivery order
  bool needs_settle_ms; // stacks with stability need longer
};

struct SweepCase {
  StackCase stack;
  HeaderCodec codec;
  double loss;
  std::uint64_t seed;
};

void PrintTo(const SweepCase& c, std::ostream* os) {
  std::string name = c.stack.spec;
  for (auto& ch : name) {
    if (ch == ':') ch = '_';
  }
  *os << name << (c.codec == HeaderCodec::kCompact ? "_compact" : "_classic")
      << "_loss" << static_cast<int>(c.loss * 100) << "_seed" << c.seed;
}

class StackSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(StackSweep, DeliversEverythingConsistently) {
  const SweepCase& c = GetParam();
  HorusSystem::Options o;
  o.seed = c.seed;
  o.net.loss = c.loss;
  o.stack.codec = c.codec;
  o.stack.stability_gossip_interval = 20 * sim::kMillisecond;
  o.stack.pinwheel_interval = 15 * sim::kMillisecond;
  World w(3, c.stack.spec, o);
  w.form_group(3 * sim::kSecond);
  ASSERT_TRUE(w.converged()) << "group did not form";

  constexpr int kPerSender = 8;
  for (int i = 0; i < kPerSender; ++i) {
    for (std::size_t m = 0; m < 3; ++m) {
      w.eps[m]->cast(kGroup, Message::from_string(
                                 "s" + std::to_string(m) + "." + std::to_string(i)));
    }
    w.sys.run_for(50 * sim::kMillisecond);
  }
  w.sys.run_for(20 * sim::kSecond);

  // Completeness: every member delivered all 24 messages...
  for (std::size_t m = 0; m < 3; ++m) {
    ASSERT_EQ(w.logs[m].casts.size(), 3u * kPerSender) << "member " << m;
    // ...without duplicates...
    std::set<std::string> uniq;
    for (const auto& d : w.logs[m].casts) uniq.insert(d.payload);
    EXPECT_EQ(uniq.size(), 3u * kPerSender) << "member " << m;
    // ...and FIFO per sender.
    for (std::size_t s = 0; s < 3; ++s) {
      auto got = w.logs[m].casts_from(w.eps[s]->address());
      ASSERT_EQ(got.size(), static_cast<std::size_t>(kPerSender));
      for (int i = 0; i < kPerSender; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)],
                  "s" + std::to_string(s) + "." + std::to_string(i));
      }
    }
  }
  if (GetParam().stack.ordered_total) {
    auto ref = w.logs[0].all_cast_payloads();
    for (std::size_t m = 1; m < 3; ++m) {
      EXPECT_EQ(w.logs[m].all_cast_payloads(), ref)
          << "total order violated at member " << m;
    }
  }
}

constexpr StackCase kStacks[] = {
    {"MBRSHIP:FRAG:NAK:COM", false, false},
    {"TOTAL:MBRSHIP:FRAG:NAK:COM", true, false},
    {"CAUSAL:MBRSHIP:FRAG:NAK:COM", false, false},
    {"STABLE:MBRSHIP:FRAG:NAK:COM", false, true},
    {"SAFE:STABLE:MBRSHIP:FRAG:NAK:COM", false, true},
    {"SAFE:PINWHEEL:MBRSHIP:FRAG:NAK:COM", false, true},
    {"TOTAL:MBRSHIP:FRAG:NAK:CHKSUM:RAWCOM", true, false},
    {"COMPRESS:ENCRYPT:SIGN:MBRSHIP:FRAG:NAK:COM", false, false},
    {"MERGE:TOTAL:MBRSHIP:FRAG:NAK:COM", true, false},
    {"VSS:BMS:FRAG:NAK:COM", false, false},
    {"TOTAL:VSS:BMS:FRAG:NAK:COM", true, false},
    {"TRACE:ACCOUNT:LOG:MBRSHIP:FRAG:NAK:COM", false, false},
};

std::vector<SweepCase> make_cases() {
  std::vector<SweepCase> cases;
  std::uint64_t seed = 100;
  for (const StackCase& s : kStacks) {
    for (HeaderCodec codec : {HeaderCodec::kPushPop, HeaderCodec::kCompact}) {
      for (double loss : {0.0, 0.1}) {
        cases.push_back({s, codec, loss, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStacks, StackSweep, ::testing::ValuesIn(make_cases()),
                         [](const auto& info) {
                           std::ostringstream os;
                           PrintTo(info.param, &os);
                           return os.str();
                         });

}  // namespace
}  // namespace horus::testing
