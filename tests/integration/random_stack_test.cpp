// Random composition fuzzing: generate random layer combinations, keep the
// ones the Section 6 algebra accepts, and prove every accepted stack
// actually works end to end (forms a destination set or group, delivers a
// loss-affected workload in FIFO order). The algebra is the gatekeeper:
// anything it lets through must run.
#include <algorithm>
#include <set>

#include "../common/test_util.hpp"
#include "horus/layers/registry.hpp"
#include "horus/util/rng.hpp"

namespace horus::testing {
namespace {

// Layers eligible for random upper-stack positions. (Excluded: transports
// -- always the bottom; BMS/VSS and MBRSHIP/MERGE stacked arbitrarily can
// both be membership owners; instrumentation layers trivially pass.)
const char* kMiddle[] = {"NAK",    "NNAK",   "FRAG",     "NFRAG",
                         "CHKSUM", "SIGN",   "ENCRYPT",  "COMPRESS",
                         "MBRSHIP", "TOTAL", "CAUSAL",   "STABLE",
                         "PINWHEEL", "SAFE", "TRACE",    "ACCOUNT"};

TEST(RandomStacks, EveryAcceptedCompositionDelivers) {
  Rng rng(20260707);
  props::PropertySet net = props::make_set({props::Property::kBestEffort});
  int accepted = 0, rejected = 0;
  std::set<std::string> tried;
  for (int iter = 0; iter < 400 && accepted < 25; ++iter) {
    // Random 1..4 middle layers over a random transport.
    std::size_t depth = 1 + rng.next_below(4);
    std::vector<std::string> names;
    for (std::size_t i = 0; i < depth; ++i) {
      names.push_back(kMiddle[rng.next_below(std::size(kMiddle))]);
    }
    names.push_back(rng.chance(0.8) ? "COM" : "RAWCOM");
    std::string spec;
    for (const auto& n : names) spec += (spec.empty() ? "" : ":") + n;
    if (!tried.insert(spec).second) continue;

    // The algebra's verdict.
    std::vector<props::LayerSpec> specs;
    for (const auto& n : names) specs.push_back(layers::layer_spec(n));
    props::StackCheck check = props::check_stack(specs, net);
    if (!check.well_formed) {
      ++rejected;
      HorusSystem sys;
      EXPECT_THROW(sys.create_endpoint(spec), std::invalid_argument) << spec;
      continue;
    }
    ++accepted;
    SCOPED_TRACE("stack: " + spec);

    // Run it. Membership stacks form a group; bare stacks get app views.
    HorusSystem::Options o;
    o.seed = 42 + static_cast<std::uint64_t>(iter);
    o.net.loss = 0.05;
    o.stack.stability_gossip_interval = 20 * sim::kMillisecond;
    o.stack.pinwheel_interval = 20 * sim::kMillisecond;
    World w(2, spec, o);
    bool membership = spec.find("MBRSHIP") != std::string::npos;
    if (membership) {
      w.form_group(3 * sim::kSecond);
      ASSERT_TRUE(w.converged());
    } else {
      std::vector<Address> members = {w.eps[0]->address(), w.eps[1]->address()};
      for (auto* ep : w.eps) {
        ep->join(kGroup);
        ep->install_view(kGroup, members);
      }
      w.sys.run_for(10 * sim::kMillisecond);
    }
    // SAFE needs acks from the app side.
    if (spec.find("SAFE") != std::string::npos) {
      for (std::size_t m = 0; m < 2; ++m) {
        Endpoint* ep = w.eps[m];
        AppLog* log = &w.logs[m];
        ep->on_upcall([ep, log](Group& g, UpEvent& ev) {
          if (ev.type == UpType::kCast) {
            log->casts.push_back({ev.source, ev.msg_id, ev.msg.payload_string()});
            ep->ack(g.gid(), ev.source, ev.msg_id);
          }
        });
      }
    }
    constexpr int kMsgs = 12;
    for (int i = 0; i < kMsgs; ++i) {
      w.eps[0]->cast(kGroup, Message::from_string("m" + std::to_string(i)));
      w.sys.run_for(20 * sim::kMillisecond);
    }
    w.sys.run_for(15 * sim::kSecond);
    bool reliable =
        std::find(names.begin(), names.end(), "NAK") != names.end() ||
        std::find(names.begin(), names.end(), "FUSED") != names.end();
    auto got = w.logs[1].casts_from(w.eps[0]->address());
    if (reliable) {
      ASSERT_EQ(got.size(), static_cast<std::size_t>(kMsgs)) << spec;
      for (int i = 0; i < kMsgs; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)], "m" + std::to_string(i));
      }
    } else {
      // Best-effort stacks: whatever arrives must be intact and in FIFO
      // order is not guaranteed... but content integrity always is.
      for (const auto& p : got) {
        EXPECT_EQ(p.rfind("m", 0), 0u) << spec << " delivered garbage: " << p;
      }
    }
  }
  // The generator must have exercised both verdicts substantially.
  EXPECT_GE(accepted, 15) << "too few accepted stacks to be meaningful";
  EXPECT_GE(rejected, 30) << "too few rejected stacks to be meaningful";
}

}  // namespace
}  // namespace horus::testing
