// Long-horizon churn torture: crashes, rejoins, partitions, heals, and a
// steady multicast workload, all interleaved over many simulated minutes,
// with the virtual synchrony invariants checked continuously. Seeded and
// deterministic -- a failure prints the seed to reproduce.
#include <set>

#include "../common/test_util.hpp"
#include "horus/util/rng.hpp"

namespace horus::testing {
namespace {

struct ChurnParam {
  std::uint64_t seed;
  double loss;
  const char* stack = "MERGE:MBRSHIP:FRAG:NAK:COM";
};

class ChurnTest : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(ChurnTest, SurvivesSustainedChurn) {
  const auto p = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(p.seed));
  constexpr std::size_t kN = 5;
  HorusSystem::Options o;
  o.seed = p.seed;
  o.net.loss = p.loss;
  World w(kN, p.stack, o);
  // Per-member, per-(view,sender) delivery tracking for FIFO/dup checks.
  struct Track {
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> last;
    std::uint64_t dups = 0, fifo_violations = 0, delivered = 0;
  };
  std::vector<Track> tracks(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    Track* t = &tracks[i];
    AppLog* log = &w.logs[i];
    w.eps[i]->on_upcall([t, log](Group& g, UpEvent& ev) {
      if (ev.type == UpType::kView) {
        log->views.push_back(ev.view);
      } else if (ev.type == UpType::kCast) {
        ++t->delivered;
        auto key = std::make_pair(g.view().id().seq, ev.source.id);
        std::uint64_t& prev = t->last[key];
        if (ev.msg_id <= prev) {
          ++(ev.msg_id == prev ? t->dups : t->fifo_violations);
        }
        prev = ev.msg_id;
      }
    });
  }
  w.form_group(3 * sim::kSecond);
  ASSERT_TRUE(w.converged());

  Rng rng(p.seed * 7919 + 17);
  std::set<std::size_t> down;  // members currently crashed (member 0 anchors)
  bool partitioned = false;
  for (int step = 0; step < 60; ++step) {
    // Workload: all live members cast.
    for (std::size_t m = 0; m < kN; ++m) {
      if (down.contains(m)) continue;
      w.eps[m]->cast(kGroup, Message::from_string(
                                 "s" + std::to_string(step) + "." + std::to_string(m)));
    }
    // Churn event roulette.
    switch (rng.next_below(8)) {
      case 0:  // crash someone (keep at least 3 alive, never member 0)
        if (down.size() < 2) {
          std::size_t victim = 1 + rng.next_below(kN - 1);
          if (!down.contains(victim)) {
            down.insert(victim);
            w.sys.crash(*w.eps[victim]);
          }
        }
        break;
      case 1:  // partition (only when whole)
        if (!partitioned && down.empty()) {
          w.sys.partition({{w.eps[0], w.eps[1], w.eps[2]},
                           {w.eps[3], w.eps[4]}});
          partitioned = true;
        }
        break;
      case 2:  // heal
        if (partitioned) {
          w.sys.heal();
          partitioned = false;
        }
        break;
      default:
        break;  // mostly just traffic
    }
    w.sys.run_for(400 * sim::kMillisecond);
  }
  if (partitioned) w.sys.heal();
  w.sys.run_for(30 * sim::kSecond);  // settle: merges, flushes, retransmits

  // Liveness: all never-crashed members converge to one view of the
  // survivors.
  std::vector<std::size_t> alive;
  for (std::size_t i = 0; i < kN; ++i) {
    if (!down.contains(i)) alive.push_back(i);
  }
  ASSERT_GE(alive.size(), 3u);
  const View& final_view = w.logs[alive[0]].views.back();
  EXPECT_EQ(final_view.size(), alive.size())
      << "final view " << final_view.to_string() << " vs " << alive.size()
      << " live members";
  for (std::size_t i : alive) {
    EXPECT_EQ(w.logs[i].views.back(), final_view) << "member " << i;
  }

  // Safety: never a duplicate or FIFO violation anywhere, and real traffic
  // actually flowed.
  for (std::size_t i : alive) {
    EXPECT_EQ(tracks[i].dups, 0u) << "member " << i;
    EXPECT_EQ(tracks[i].fifo_violations, 0u) << "member " << i;
    EXPECT_GT(tracks[i].delivered, 50u) << "member " << i << " starved";
  }

  // The group is still live: a fresh cast reaches every survivor.
  std::vector<std::uint64_t> before;
  for (std::size_t i : alive) before.push_back(tracks[i].delivered);
  w.eps[alive[0]]->cast(kGroup, Message::from_string("final liveness probe"));
  w.sys.run_for(5 * sim::kSecond);
  for (std::size_t k = 0; k < alive.size(); ++k) {
    EXPECT_GT(tracks[alive[k]].delivered, before[k])
        << "member " << alive[k] << " no longer receives";
  }
}

INSTANTIATE_TEST_SUITE_P(Churn, ChurnTest,
                         ::testing::Values(
                             ChurnParam{1, 0.0}, ChurnParam{2, 0.05},
                             ChurnParam{3, 0.1}, ChurnParam{4, 0.05},
                             ChurnParam{5, 0.02}, ChurnParam{6, 0.08},
                             // The decomposed membership under the same fire.
                             ChurnParam{7, 0.0, "MERGE:VSS:BMS:FRAG:NAK:COM"},
                             ChurnParam{8, 0.05, "MERGE:VSS:BMS:FRAG:NAK:COM"}),
                         [](const auto& info) {
                           std::string tag =
                               std::string(info.param.stack).find("VSS") !=
                                       std::string::npos
                                   ? "_vssbms"
                                   : "";
                           return "seed" + std::to_string(info.param.seed) +
                                  "_loss" +
                                  std::to_string(int(info.param.loss * 100)) +
                                  tag;
                         });

}  // namespace
}  // namespace horus::testing
