// The Section 11 sockets facade: "a UNIX sendto operation will be mapped
// to a multicast, and a recvfrom will receive the next incoming message".
#include <gtest/gtest.h>

#include "horus/api/hsocket.hpp"

namespace horus {
namespace {

constexpr GroupId kGrp{7};
constexpr const char* kStack = "MBRSHIP:FRAG:NAK:COM";

HorusSystem::Options quiet() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  return o;
}

TEST(HSocket, BindConnectSendRecv) {
  HorusSystem sys(quiet());
  HSocket a(sys, kStack);
  HSocket b(sys, kStack);
  a.hbind(kGrp);
  sys.run_for(100 * sim::kMillisecond);
  b.hconnect(kGrp, a.address());
  sys.run_for(2 * sim::kSecond);
  ASSERT_TRUE(a.has_view());
  ASSERT_TRUE(b.has_view());
  EXPECT_EQ(a.view().size(), 2u);

  EXPECT_EQ(a.hsendto(to_bytes("over the wall")), 13u);
  sys.run_for(sim::kSecond);

  // b drains: first the view-change packets, then the datagram.
  bool got_data = false;
  while (auto p = b.hrecvfrom()) {
    if (p->kind == HSocket::Packet::Kind::kData) {
      EXPECT_EQ(to_string(p->data), "over the wall");
      EXPECT_EQ(p->source, a.address());
      got_data = true;
    }
  }
  EXPECT_TRUE(got_data);
}

TEST(HSocket, RecvFromEmptyIsNullopt) {
  HorusSystem sys(quiet());
  HSocket a(sys, kStack);
  EXPECT_FALSE(a.hrecvfrom().has_value());
}

TEST(HSocket, ViewChangePacketsDelivered) {
  HorusSystem sys(quiet());
  HSocket a(sys, kStack);
  a.hbind(kGrp);
  sys.run_for(sim::kSecond);
  auto p = a.hrecvfrom();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, HSocket::Packet::Kind::kViewChange);
  EXPECT_EQ(p->view.size(), 1u);
}

TEST(HSocket, SubsetSend) {
  HorusSystem sys(quiet());
  HSocket a(sys, kStack), b(sys, kStack), c(sys, kStack);
  a.hbind(kGrp);
  sys.run_for(100 * sim::kMillisecond);
  b.hconnect(kGrp, a.address());
  sys.run_for(sim::kSecond);
  c.hconnect(kGrp, a.address());
  sys.run_for(2 * sim::kSecond);
  a.hsendto(to_bytes("only for c"), {c.address()});
  sys.run_for(sim::kSecond);
  bool c_got = false;
  while (auto p = c.hrecvfrom()) {
    if (p->kind == HSocket::Packet::Kind::kData) c_got = true;
  }
  bool b_got = false;
  while (auto p = b.hrecvfrom()) {
    if (p->kind == HSocket::Packet::Kind::kData) b_got = true;
  }
  EXPECT_TRUE(c_got);
  EXPECT_FALSE(b_got);
}

TEST(HSocket, FifoOrderPreserved) {
  HorusSystem::Options o = quiet();
  o.net.loss = 0.15;
  HorusSystem sys(o);
  HSocket a(sys, kStack), b(sys, kStack);
  a.hbind(kGrp);
  sys.run_for(100 * sim::kMillisecond);
  b.hconnect(kGrp, a.address());
  sys.run_for(2 * sim::kSecond);
  for (int i = 0; i < 25; ++i) {
    a.hsendto(to_bytes("pkt" + std::to_string(i)));
  }
  sys.run_for(10 * sim::kSecond);
  int next = 0;
  while (auto p = b.hrecvfrom()) {
    if (p->kind != HSocket::Packet::Kind::kData) continue;
    if (p->source == a.address()) {
      EXPECT_EQ(to_string(p->data), "pkt" + std::to_string(next));
      ++next;
    }
  }
  EXPECT_EQ(next, 25);
}

TEST(HSocket, CloseLeavesGroup) {
  HorusSystem sys(quiet());
  HSocket a(sys, kStack), b(sys, kStack);
  a.hbind(kGrp);
  sys.run_for(100 * sim::kMillisecond);
  b.hconnect(kGrp, a.address());
  sys.run_for(2 * sim::kSecond);
  b.hclose();
  sys.run_for(3 * sim::kSecond);
  EXPECT_EQ(a.view().size(), 1u);
  // b received the EXIT packet.
  bool exited = false;
  while (auto p = b.hrecvfrom()) {
    if (p->kind == HSocket::Packet::Kind::kExit) exited = true;
  }
  EXPECT_TRUE(exited);
}

TEST(HSocket, AckFeedsStability) {
  HorusSystem::Options o = quiet();
  o.stack.stability_gossip_interval = 20 * sim::kMillisecond;
  HorusSystem sys(o);
  const char* stack = "STABLE:MBRSHIP:FRAG:NAK:COM";
  HSocket a(sys, stack), b(sys, stack);
  a.hbind(kGrp);
  sys.run_for(100 * sim::kMillisecond);
  b.hconnect(kGrp, a.address());
  sys.run_for(2 * sim::kSecond);
  a.hsendto(to_bytes("ack me"));
  sys.run_for(sim::kSecond);
  // Both sides ack what they received.
  auto drain_ack = [](HSocket& s) {
    while (auto p = s.hrecvfrom()) {
      if (p->kind == HSocket::Packet::Kind::kData) s.hack(p->source, p->id);
    }
  };
  drain_ack(a);
  drain_ack(b);
  // The STABLE upcalls are internal to the stack here; we simply require
  // the sockets to stay healthy (no crash) with the ack path exercised.
  sys.run_for(2 * sim::kSecond);
  SUCCEED();
}

}  // namespace
}  // namespace horus
