// Shared helpers for Horus tests: a recording application sink and a
// small world-builder over HorusSystem.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "horus/api/system.hpp"

namespace horus::testing {

constexpr GroupId kGroup{42};

/// Global heap-allocation counter for zero-allocation assertions.
///
/// Define HORUS_TEST_COUNT_ALLOCS in exactly one translation unit of a test
/// binary *before* including this header to install counting operator
/// new/delete; then scope measurements with AllocCounter:
///
///   AllocCounter c;
///   hot_path();
///   EXPECT_EQ(c.allocations(), 0u);
///
/// Each test source is its own binary here, so defining the macro at the
/// top of the file is safe.
struct AllocCounterState {
  static std::atomic<std::uint64_t>& count() {
    static std::atomic<std::uint64_t> n{0};
    return n;
  }
};

class AllocCounter {
 public:
  AllocCounter() : start_(AllocCounterState::count().load()) {}
  /// Heap allocations since construction (or the last reset()).
  [[nodiscard]] std::uint64_t allocations() const {
    return AllocCounterState::count().load() - start_;
  }
  void reset() { start_ = AllocCounterState::count().load(); }

 private:
  std::uint64_t start_;
};

/// Records everything the application sees from one endpoint.
struct AppLog {
  struct Delivery {
    Address source;
    std::uint64_t msg_id;
    std::string payload;
  };
  std::vector<Delivery> casts;
  std::vector<Delivery> sends;
  std::vector<View> views;
  std::vector<StabilityMatrix> stability;
  std::vector<Address> problems;
  std::vector<std::uint64_t> lost;  // msg ids of LOST_MESSAGE placeholders
  int exits = 0;
  int flushes = 0;

  void attach(Endpoint& ep) {
    ep.on_upcall([this](Group&, UpEvent& ev) {
      switch (ev.type) {
        case UpType::kCast:
          casts.push_back({ev.source, ev.msg_id, ev.msg.payload_string()});
          break;
        case UpType::kSend:
          sends.push_back({ev.source, ev.msg_id, ev.msg.payload_string()});
          break;
        case UpType::kView:
          views.push_back(ev.view);
          break;
        case UpType::kStable:
          stability.push_back(ev.stability);
          break;
        case UpType::kProblem:
          problems.push_back(ev.source);
          break;
        case UpType::kLostMessage:
          lost.push_back(ev.msg_id);
          break;
        case UpType::kExit:
          ++exits;
          break;
        case UpType::kFlush:
          ++flushes;
          break;
        default:
          break;
      }
    });
  }

  /// Payloads of casts from one sender, in delivery order.
  std::vector<std::string> casts_from(Address src) const {
    std::vector<std::string> out;
    for (const auto& d : casts) {
      if (d.source == src) out.push_back(d.payload);
    }
    return out;
  }

  std::vector<std::string> all_cast_payloads() const {
    std::vector<std::string> out;
    out.reserve(casts.size());
    for (const auto& d : casts) out.push_back(d.payload);
    return out;
  }
};

/// A world of n endpoints running the same stack, with app logs attached.
struct World {
  explicit World(std::size_t n, const std::string& spec,
                 HorusSystem::Options opts = {}) : sys(opts) {
    logs.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      eps.push_back(&sys.create_endpoint(spec));
      logs[i].attach(*eps[i]);
    }
  }

  /// Bootstrap member 0, join the rest through it, run until views settle.
  void form_group(sim::Duration settle = 2 * sim::kSecond) {
    eps[0]->join(kGroup);
    sys.run_for(50 * sim::kMillisecond);
    for (std::size_t i = 1; i < eps.size(); ++i) {
      eps[i]->join(kGroup, eps[0]->address());
      sys.run_for(50 * sim::kMillisecond);
    }
    sys.run_for(settle);
  }

  /// True when every (non-crashed) endpoint's latest view has all n members.
  bool converged() const {
    for (std::size_t i = 0; i < eps.size(); ++i) {
      if (eps[i]->crashed()) continue;
      if (logs[i].views.empty()) return false;
      if (logs[i].views.back().size() != eps.size()) return false;
    }
    return true;
  }

  HorusSystem sys;
  std::vector<Endpoint*> eps;
  std::vector<AppLog> logs;
};

}  // namespace horus::testing

#ifdef HORUS_TEST_COUNT_ALLOCS
// Counting replacements for the global allocation functions. malloc/free are
// used underneath so the counter itself never recurses. sized/aligned
// variants forward to these. (GCC flags free() inside operator delete as
// mismatched because it cannot see that our operator new mallocs.)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  horus::testing::AllocCounterState::count().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop
#endif  // HORUS_TEST_COUNT_ALLOCS
