// The Section 6/7 stack algebra, checked against the registered layers'
// actual Table 3 rows -- including the paper's worked example: the stack
// TOTAL:MBRSHIP:FRAG:NAK:COM over a network providing only P1 "results in
// the properties P3, P4, P6, P8, P9, P10, P11, P12, and P15".
#include "horus/properties/algebra.hpp"

#include <gtest/gtest.h>

#include "horus/layers/registry.hpp"

namespace horus::props {
namespace {

using layers::layer_spec;

std::vector<LayerSpec> specs_for(const std::string& spec_string) {
  std::vector<LayerSpec> out;
  for (const auto& name : layers::split_spec(spec_string)) {
    out.push_back(layer_spec(name));
  }
  return out;
}

constexpr PropertySet kP1 = make_set({Property::kBestEffort});

TEST(Algebra, Section7WorkedExample) {
  auto result = derive(specs_for("TOTAL:MBRSHIP:FRAG:NAK:COM"), kP1);
  ASSERT_TRUE(result.has_value());
  PropertySet expected = make_set(
      {Property::kFifoUnicast, Property::kFifoMulticast, Property::kTotalOrder,
       Property::kVirtualSemiSync, Property::kVirtualSync,
       Property::kGarblingDetect, Property::kSourceAddress,
       Property::kLargeMessages, Property::kConsistentViews});
  EXPECT_EQ(to_string(*result), to_string(expected))
      << "Section 7 derivation mismatch";
}

TEST(Algebra, ComAloneProvidesP10P11) {
  auto result = derive(specs_for("COM"), kP1);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(has(*result, Property::kGarblingDetect));
  EXPECT_TRUE(has(*result, Property::kSourceAddress));
  EXPECT_TRUE(has(*result, Property::kBestEffort));  // inherited
}

TEST(Algebra, NakReplacesBestEffort) {
  auto result = derive(specs_for("NAK:COM"), kP1);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(has(*result, Property::kFifoUnicast));
  EXPECT_TRUE(has(*result, Property::kFifoMulticast));
  EXPECT_FALSE(has(*result, Property::kBestEffort))
      << "NAK must not inherit P1: delivery is no longer best-effort";
}

TEST(Algebra, IllFormedWhenRequirementMissing) {
  // FRAG requires FIFO; stacking it directly on COM must be rejected.
  StackCheck c = check_stack(specs_for("FRAG:COM"), kP1);
  EXPECT_FALSE(c.well_formed);
  EXPECT_NE(c.error.find("FRAG"), std::string::npos);
  EXPECT_NE(c.error.find("P3"), std::string::npos);
}

TEST(Algebra, OrderMatters) {
  // MBRSHIP above FRAG works; below it does not (MBRSHIP needs P12).
  EXPECT_TRUE(derive(specs_for("MBRSHIP:FRAG:NAK:COM"), kP1).has_value());
  EXPECT_FALSE(derive(specs_for("FRAG:MBRSHIP:NAK:COM"), kP1).has_value());
}

TEST(Algebra, RawComNeedsChksumForNak) {
  // RAWCOM lacks the checksum, so NAK's P10 requirement fails...
  EXPECT_FALSE(derive(specs_for("NAK:RAWCOM"), kP1).has_value());
  // ...until a CHKSUM layer is composed in between.
  auto fixed = derive(specs_for("NAK:CHKSUM:RAWCOM"), kP1);
  ASSERT_TRUE(fixed.has_value());
  EXPECT_TRUE(has(*fixed, Property::kFifoMulticast));
}

TEST(Algebra, EmptyNetworkFailsCom) {
  EXPECT_FALSE(derive(specs_for("COM"), 0).has_value());
}

TEST(Algebra, CausalStack) {
  auto result = derive(specs_for("CAUSAL:MBRSHIP:FRAG:NAK:COM"), kP1);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(has(*result, Property::kCausal));
  EXPECT_TRUE(has(*result, Property::kCausalTimestamps));
  EXPECT_FALSE(has(*result, Property::kTotalOrder));
}

TEST(Algebra, SafeDeliveryNeedsStability) {
  EXPECT_FALSE(derive(specs_for("SAFE:MBRSHIP:FRAG:NAK:COM"), kP1).has_value())
      << "SAFE requires P14, which nothing below provides";
  auto with = derive(specs_for("SAFE:STABLE:MBRSHIP:FRAG:NAK:COM"), kP1);
  ASSERT_TRUE(with.has_value());
  EXPECT_TRUE(has(*with, Property::kSafe));
  auto pin = derive(specs_for("SAFE:PINWHEEL:MBRSHIP:FRAG:NAK:COM"), kP1);
  ASSERT_TRUE(pin.has_value()) << "PINWHEEL is an interchangeable P14 source";
}

TEST(Algebra, MergeProvidesP16) {
  auto result = derive(specs_for("MERGE:MBRSHIP:FRAG:NAK:COM"), kP1);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(has(*result, Property::kAutoMerge));
}

TEST(Algebra, AfterLayerTraceIsBottomUp) {
  StackCheck c = check_stack(specs_for("NAK:COM"), kP1);
  ASSERT_TRUE(c.well_formed);
  ASSERT_EQ(c.after_layer.size(), 2u);
  // after COM: P1 + P10 + P11; after NAK: FIFO added, P1 removed.
  EXPECT_TRUE(has(c.after_layer[0], Property::kBestEffort));
  EXPECT_TRUE(has(c.after_layer[1], Property::kFifoMulticast));
  EXPECT_FALSE(has(c.after_layer[1], Property::kBestEffort));
}

// ---------------------------------------------------------------------------
// Minimal stack search ("Horus actually builds a single protocol for the
// particular application on the fly")
// ---------------------------------------------------------------------------

TEST(MinimalStack, FindsFifoStack) {
  auto lib = layers::all_layer_specs();
  auto res = find_minimal_stack(lib, kP1,
                                make_set({Property::kFifoMulticast}));
  ASSERT_TRUE(res.found);
  // Cheapest FIFO multicast: NAK over COM (or FUSED over COM); either way
  // the bottom is a COM variant and the result is well-formed.
  ASSERT_GE(res.stack.size(), 2u);
  EXPECT_TRUE(res.stack.back() == "COM" || res.stack.back() == "RAWCOM");
  std::vector<LayerSpec> chosen;
  for (const auto& n : res.stack) chosen.push_back(layer_spec(n));
  auto derived = derive(chosen, kP1);
  ASSERT_TRUE(derived.has_value());
  EXPECT_TRUE(has(*derived, Property::kFifoMulticast));
}

TEST(MinimalStack, FindsTotalOrderStack) {
  auto lib = layers::all_layer_specs();
  auto res = find_minimal_stack(lib, kP1, make_set({Property::kTotalOrder}));
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.stack.front(), "TOTAL");
  // It must have picked a membership layer to satisfy TOTAL's P9/P15.
  bool has_mbrship = false;
  for (const auto& n : res.stack) has_mbrship |= (n == "MBRSHIP");
  EXPECT_TRUE(has_mbrship);
}

TEST(MinimalStack, CostDrivesChoice) {
  // Two providers of P14 exist (STABLE, PINWHEEL); search must pick the
  // cheaper path and still satisfy SAFE's requirements.
  auto lib = layers::all_layer_specs();
  auto res = find_minimal_stack(lib, kP1, make_set({Property::kSafe}));
  ASSERT_TRUE(res.found);
  std::vector<LayerSpec> chosen;
  for (const auto& n : res.stack) chosen.push_back(layer_spec(n));
  auto derived = derive(chosen, kP1);
  ASSERT_TRUE(derived.has_value());
  EXPECT_TRUE(has(*derived, Property::kSafe));
}

TEST(MinimalStack, UnsatisfiableFails) {
  // Nothing provides P2 (prioritized delivery) in the library.
  auto lib = layers::all_layer_specs();
  auto res = find_minimal_stack(lib, kP1, make_set({Property::kPrioritized}));
  EXPECT_FALSE(res.found);
}

TEST(MinimalStack, AlreadySatisfiedIsEmpty) {
  auto lib = layers::all_layer_specs();
  auto res = find_minimal_stack(lib, kP1, kP1);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.stack.empty());
  EXPECT_EQ(res.cost, 0);
}

TEST(MinimalStack, EveryRegisteredLayerHasConsistentSpec) {
  // Sanity over the whole Table 3: requires/provides/inherits stay within
  // the property universe, and provides does not overlap requires... a
  // layer shouldn't require what it claims to newly provide.
  for (const auto& name : layers::layer_names()) {
    LayerSpec s = layer_spec(name);
    EXPECT_EQ(s.requires_below & ~kAllProperties, 0u) << name;
    EXPECT_EQ(s.provides & ~kAllProperties, 0u) << name;
    EXPECT_EQ(s.inherits & ~kAllProperties, 0u) << name;
    EXPECT_GE(s.cost, 0) << name;
  }
}

}  // namespace
}  // namespace horus::props
