#include "horus/properties/property.hpp"

#include <gtest/gtest.h>

namespace horus::props {
namespace {

TEST(Property, MaskBitsAreDistinct) {
  PropertySet all = 0;
  for (int i = 1; i <= kPropertyCount; ++i) {
    PropertySet m = mask(static_cast<Property>(i));
    EXPECT_EQ(all & m, 0u) << "P" << i << " overlaps";
    all |= m;
  }
  EXPECT_EQ(all, kAllProperties);
}

TEST(Property, MakeSetAndHas) {
  PropertySet s = make_set({Property::kFifoUnicast, Property::kTotalOrder});
  EXPECT_TRUE(has(s, Property::kFifoUnicast));
  EXPECT_TRUE(has(s, Property::kTotalOrder));
  EXPECT_FALSE(has(s, Property::kCausal));
}

TEST(Property, IncludesIsSubset) {
  PropertySet big = make_set({Property::kBestEffort, Property::kCausal,
                              Property::kSafe});
  EXPECT_TRUE(includes(big, make_set({Property::kCausal})));
  EXPECT_TRUE(includes(big, big));
  EXPECT_TRUE(includes(big, 0));
  EXPECT_FALSE(includes(big, make_set({Property::kTotalOrder})));
}

TEST(Property, Table4DescriptionsComplete) {
  // Table 4's wording, verbatim for every property.
  EXPECT_EQ(description(Property::kBestEffort), "best effort delivery");
  EXPECT_EQ(description(Property::kPrioritized), "prioritized effort delivery");
  EXPECT_EQ(description(Property::kFifoUnicast), "FIFO unicast delivery");
  EXPECT_EQ(description(Property::kFifoMulticast), "FIFO multicast delivery");
  EXPECT_EQ(description(Property::kCausal), "causal delivery");
  EXPECT_EQ(description(Property::kTotalOrder), "totally ordered delivery");
  EXPECT_EQ(description(Property::kSafe), "safe delivery");
  EXPECT_EQ(description(Property::kVirtualSemiSync),
            "virtually semi-synchronous delivery");
  EXPECT_EQ(description(Property::kVirtualSync),
            "virtually synchronous delivery");
  EXPECT_EQ(description(Property::kGarblingDetect),
            "byte re-ordering detection");
  EXPECT_EQ(description(Property::kSourceAddress), "source address");
  EXPECT_EQ(description(Property::kLargeMessages), "large messages");
  EXPECT_EQ(description(Property::kCausalTimestamps), "causal timestamps");
  EXPECT_EQ(description(Property::kStabilityInfo), "stability information");
  EXPECT_EQ(description(Property::kConsistentViews), "consistent views");
  EXPECT_EQ(description(Property::kAutoMerge), "automatic view merging");
}

TEST(Property, ShortNames) {
  EXPECT_EQ(short_name(Property::kBestEffort), "P1");
  EXPECT_EQ(short_name(Property::kAutoMerge), "P16");
}

TEST(Property, ToStringRendersSet) {
  EXPECT_EQ(to_string(0), "{}");
  EXPECT_EQ(to_string(make_set({Property::kFifoUnicast, Property::kTotalOrder})),
            "{P3,P6}");
  std::string all = to_string(kAllProperties);
  EXPECT_NE(all.find("P1,"), std::string::npos);
  EXPECT_NE(all.find("P16"), std::string::npos);
}

TEST(Property, ToListAscending) {
  auto l = to_list(make_set({Property::kSafe, Property::kBestEffort}));
  ASSERT_EQ(l.size(), 2u);
  EXPECT_EQ(l[0], Property::kBestEffort);
  EXPECT_EQ(l[1], Property::kSafe);
}

}  // namespace
}  // namespace horus::props
