#include "horus/util/crypto.hpp"

#include <gtest/gtest.h>

#include <set>

#include "horus/util/rng.hpp"

namespace horus {
namespace {

TEST(Mac64, DeterministicPerKey) {
  Key k{1, 2};
  Bytes m = to_bytes("authenticate me");
  EXPECT_EQ(mac64(k, m), mac64(k, m));
  EXPECT_NE(mac64(k, m), mac64(Key{1, 3}, m));
  EXPECT_NE(mac64(k, m), mac64(Key{2, 2}, m));
}

TEST(Mac64, SensitiveToEveryByte) {
  Key k{0xfeed, 0xf00d};
  Bytes m(64, 0x55);
  std::uint64_t ref = mac64(k, m);
  for (std::size_t i = 0; i < m.size(); ++i) {
    Bytes copy = m;
    copy[i] ^= 1;
    EXPECT_NE(mac64(k, copy), ref) << "byte " << i;
  }
}

TEST(Mac64, LengthExtensionChangesMac) {
  Key k{3, 4};
  // Careful with embedded NULs: build the longer inputs explicitly.
  Bytes ab = to_bytes("ab");
  Bytes ab0 = ab;
  ab0.push_back(0);
  EXPECT_NE(mac64(k, ab), mac64(k, ab0));
  EXPECT_NE(mac64(k, Bytes{}), mac64(k, Bytes{0}));
}

TEST(Mac64, NoEasyCollisions) {
  Key k{11, 13};
  std::set<std::uint64_t> macs;
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    Bytes m(16, 0);
    for (auto& b : m) b = static_cast<std::uint8_t>(rng.next_u64());
    macs.insert(mac64(k, m));
  }
  EXPECT_EQ(macs.size(), 2000u);  // all distinct
}

TEST(StreamCipher, RoundTrip) {
  Key k{42, 43};
  Bytes plain = to_bytes("the secret group state");
  Bytes ct = stream_xor(k, 7, plain);
  EXPECT_NE(ct, plain);
  EXPECT_EQ(stream_xor(k, 7, ct), plain);
}

TEST(StreamCipher, NonceMatters) {
  Key k{42, 43};
  Bytes plain(64, 0xaa);
  EXPECT_NE(stream_xor(k, 1, plain), stream_xor(k, 2, plain));
}

TEST(StreamCipher, KeyMatters) {
  Bytes plain(64, 0xaa);
  EXPECT_NE(stream_xor(Key{1, 1}, 7, plain), stream_xor(Key{1, 2}, 7, plain));
}

TEST(StreamCipher, WrongNonceGarbles) {
  Key k{5, 6};
  Bytes plain = to_bytes("payload");
  Bytes ct = stream_xor(k, 10, plain);
  EXPECT_NE(stream_xor(k, 11, ct), plain);
}

TEST(StreamCipher, AllLengths) {
  Key k{9, 9};
  for (std::size_t len = 0; len < 40; ++len) {
    Bytes plain(len, 0x3c);
    EXPECT_EQ(stream_xor(k, len, stream_xor(k, len, plain)), plain) << len;
  }
}

}  // namespace
}  // namespace horus
