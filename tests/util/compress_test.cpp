#include "horus/util/compress.hpp"

#include <gtest/gtest.h>

#include "horus/util/rng.hpp"
#include "horus/util/serialize.hpp"

namespace horus {
namespace {

TEST(Compress, EmptyRoundTrip) {
  Bytes c = compress({});
  EXPECT_EQ(decompress(c), Bytes{});
}

TEST(Compress, ShortLiteralRoundTrip) {
  Bytes in = to_bytes("abc");
  EXPECT_EQ(decompress(compress(in)), in);
}

TEST(Compress, RepetitiveShrinks) {
  Bytes in(4096, 'x');
  Bytes c = compress(in);
  EXPECT_LT(c.size(), in.size() / 8) << "RLE-like input should shrink a lot";
  EXPECT_EQ(decompress(c), in);
}

TEST(Compress, PeriodicPatternShrinks) {
  Bytes in;
  for (int i = 0; i < 1000; ++i) {
    for (char ch : {'h', 'o', 'r', 'u', 's', '-'}) in.push_back(ch);
  }
  Bytes c = compress(in);
  EXPECT_LT(c.size(), in.size() / 2);
  EXPECT_EQ(decompress(c), in);
}

TEST(Compress, RandomDataRoundTrips) {
  Rng rng(123);
  for (std::size_t len : {1u, 3u, 4u, 5u, 64u, 1000u, 5000u}) {
    Bytes in(len, 0);
    for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(decompress(compress(in)), in) << "len " << len;
  }
}

TEST(Compress, MixedContentRoundTrips) {
  Rng rng(77);
  Bytes in;
  for (int block = 0; block < 50; ++block) {
    if (rng.chance(0.5)) {
      std::size_t n = 1 + rng.next_below(100);
      std::uint8_t v = static_cast<std::uint8_t>(rng.next_u64());
      in.insert(in.end(), n, v);
    } else {
      std::size_t n = 1 + rng.next_below(100);
      for (std::size_t i = 0; i < n; ++i) {
        in.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      }
    }
  }
  EXPECT_EQ(decompress(compress(in)), in);
}

TEST(Compress, MatchesAcrossDistance) {
  // Two identical blocks far apart within the window.
  Bytes block(500, 0);
  Rng rng(5);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.next_u64());
  Bytes in = block;
  in.insert(in.end(), 2000, 0x11);
  in.insert(in.end(), block.begin(), block.end());
  Bytes c = compress(in);
  EXPECT_LT(c.size(), in.size());
  EXPECT_EQ(decompress(c), in);
}

TEST(Decompress, RejectsGarbage) {
  Rng rng(9);
  int rejected = 0;
  for (int i = 0; i < 200; ++i) {
    Bytes junk(1 + rng.next_below(64), 0);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      Bytes out = decompress(junk);
      // Occasionally garbage parses; it must at least terminate and not
      // crash. (Bounded by the declared size check.)
    } catch (const DecodeError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST(Decompress, RejectsTruncated) {
  Bytes in(1000, 'y');
  Bytes c = compress(in);
  c.resize(c.size() / 2);
  EXPECT_THROW(decompress(c), DecodeError);
}

TEST(Decompress, RejectsHugeDeclaredSize) {
  Writer w;
  w.varint(1ULL << 40);
  EXPECT_THROW(decompress(w.data()), DecodeError);
}

}  // namespace
}  // namespace horus
