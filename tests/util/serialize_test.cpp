#include "horus/util/serialize.hpp"

#include <gtest/gtest.h>

#include "horus/util/rng.hpp"

namespace horus {
namespace {

TEST(Serialize, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.boolean(true);
  w.boolean(false);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialize, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Serialize, VarintBoundaries) {
  for (std::uint64_t v : std::initializer_list<std::uint64_t>{
           0, 1, 127, 128, 16383, 16384, UINT64_MAX - 1, UINT64_MAX}) {
    Writer w;
    w.varint(v);
    Reader r(w.data());
    EXPECT_EQ(r.varint(), v) << v;
  }
}

TEST(Serialize, VarintSizes) {
  auto size_of = [](std::uint64_t v) {
    Writer w;
    w.varint(v);
    return w.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(UINT64_MAX), 10u);
}

TEST(Serialize, BytesAndStrings) {
  Writer w;
  w.bytes(to_bytes("hello"));
  w.str("world");
  w.bytes({});  // empty
  Reader r(w.data());
  EXPECT_EQ(to_string(r.bytes_view()), "hello");
  EXPECT_EQ(r.str(), "world");
  EXPECT_TRUE(r.bytes().empty());
}

TEST(Serialize, ReaderUnderflowThrows) {
  Writer w;
  w.u16(7);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_THROW(r.u32(), DecodeError);
}

TEST(Serialize, TruncatedVarintThrows) {
  Bytes b = {0x80, 0x80};  // continuation bits with no terminator
  Reader r(b);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Serialize, OverlongVarintThrows) {
  Bytes b(11, 0x80);  // would shift past 64 bits
  Reader r(b);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Serialize, TruncatedBytesThrows) {
  Writer w;
  w.varint(100);  // claims 100 bytes follow
  w.raw(to_bytes("short"));
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), DecodeError);
}

TEST(Serialize, SkipAndRest) {
  Writer w;
  w.u32(1);
  w.u32(2);
  Reader r(w.data());
  r.skip(4);
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.rest().size(), 4u);
  EXPECT_EQ(r.u32(), 2u);
  EXPECT_THROW(r.skip(1), DecodeError);
}

TEST(Serialize, FuzzRoundTrip) {
  // Random sequences of typed values must round-trip exactly.
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    Writer w;
    std::vector<std::pair<int, std::uint64_t>> script;
    for (int i = 0; i < 20; ++i) {
      int kind = static_cast<int>(rng.next_below(5));
      std::uint64_t v = rng.next_u64();
      script.emplace_back(kind, v);
      switch (kind) {
        case 0: w.u8(static_cast<std::uint8_t>(v)); break;
        case 1: w.u16(static_cast<std::uint16_t>(v)); break;
        case 2: w.u32(static_cast<std::uint32_t>(v)); break;
        case 3: w.u64(v); break;
        case 4: w.varint(v); break;
      }
    }
    Reader r(w.data());
    for (auto [kind, v] : script) {
      switch (kind) {
        case 0: EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(v)); break;
        case 1: EXPECT_EQ(r.u16(), static_cast<std::uint16_t>(v)); break;
        case 2: EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(v)); break;
        case 3: EXPECT_EQ(r.u64(), v); break;
        case 4: EXPECT_EQ(r.varint(), v); break;
      }
    }
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(Serialize, HexDump) {
  EXPECT_EQ(hex(to_bytes("\x01\xab")), "01ab");
  EXPECT_EQ(hex({}), "");
}

}  // namespace
}  // namespace horus
