#include "horus/util/bitfield.hpp"

#include <gtest/gtest.h>

#include "horus/util/rng.hpp"

namespace horus {
namespace {

TEST(Bits, SetGetSingleBits) {
  Bytes buf(4, 0);
  bits_set(buf, 0, 1, 1);
  bits_set(buf, 7, 1, 1);
  bits_set(buf, 13, 1, 1);
  EXPECT_EQ(bits_get(buf, 0, 1), 1u);
  EXPECT_EQ(bits_get(buf, 7, 1), 1u);
  EXPECT_EQ(bits_get(buf, 13, 1), 1u);
  EXPECT_EQ(bits_get(buf, 1, 1), 0u);
  bits_set(buf, 7, 1, 0);
  EXPECT_EQ(bits_get(buf, 7, 1), 0u);
}

TEST(Bits, UnalignedWideField) {
  Bytes buf(16, 0);
  bits_set(buf, 3, 64, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(bits_get(buf, 3, 64), 0xdeadbeefcafef00dULL);
  // Neighbours untouched.
  EXPECT_EQ(bits_get(buf, 0, 3), 0u);
  EXPECT_EQ(bits_get(buf, 67, 8), 0u);
}

TEST(Bits, ValueTruncatedToWidth) {
  Bytes buf(4, 0);
  bits_set(buf, 0, 4, 0xff);
  EXPECT_EQ(bits_get(buf, 0, 4), 0xfu);
  EXPECT_EQ(bits_get(buf, 4, 4), 0u);
}

TEST(Bits, RandomizedPacking) {
  Rng rng(31);
  for (int iter = 0; iter < 100; ++iter) {
    // Lay out random fields back to back, then verify all.
    struct F {
      std::size_t off;
      int bits;
      std::uint64_t val;
    };
    std::vector<F> fields;
    std::size_t off = 0;
    for (int i = 0; i < 30; ++i) {
      int bits = 1 + static_cast<int>(rng.next_below(64));
      std::uint64_t val = rng.next_u64();
      if (bits < 64) val &= (1ULL << bits) - 1;
      fields.push_back({off, bits, val});
      off += static_cast<std::size_t>(bits);
    }
    Bytes buf((off + 7) / 8, 0);
    for (const auto& f : fields) bits_set(buf, f.off, f.bits, f.val);
    for (const auto& f : fields) {
      EXPECT_EQ(bits_get(buf, f.off, f.bits), f.val)
          << "off " << f.off << " bits " << f.bits;
    }
  }
}

TEST(BitLayout, AssignsDisjointSlots) {
  BitLayout layout;
  std::size_t g0 = layout.add_group({{"a", 3}, {"b", 17}});
  std::size_t g1 = layout.add_group({{"c", 1}});
  std::size_t g2 = layout.add_group({{"d", 64}, {"e", 5}});
  EXPECT_EQ(layout.bit_size(), 3u + 17 + 1 + 64 + 5);
  EXPECT_EQ(layout.byte_size(), (90u + 7) / 8);
  Bytes region(layout.byte_size(), 0);
  layout.set(region, g0, 0, 0x5);
  layout.set(region, g0, 1, 0x1ffff);
  layout.set(region, g1, 0, 1);
  layout.set(region, g2, 0, UINT64_MAX);
  layout.set(region, g2, 1, 0x1f);
  EXPECT_EQ(layout.get(region, g0, 0), 0x5u);
  EXPECT_EQ(layout.get(region, g0, 1), 0x1ffffu);
  EXPECT_EQ(layout.get(region, g1, 0), 1u);
  EXPECT_EQ(layout.get(region, g2, 0), UINT64_MAX);
  EXPECT_EQ(layout.get(region, g2, 1), 0x1fu);
}

TEST(BitLayout, CompactionBeatsWordAlignment) {
  // The Section 10 claim: bit-sized fields waste far less space than
  // word-aligned headers. A realistic stack's fields:
  BitLayout layout;
  layout.add_group({{"kind", 2}, {"gseq", 32}});                   // TOTAL
  layout.add_group({{"kind", 4}, {"vseq", 32}, {"view", 32}});     // MBRSHIP
  layout.add_group({{"last", 1}, {"bundled", 1}});                 // FRAG
  layout.add_group({{"kind", 3}, {"s", 1}, {"e", 32}, {"q", 32}}); // NAK
  layout.add_group({{"gid", 64}, {"src", 64}, {"snd", 1}});        // COM
  std::size_t word_aligned = 4 * 2 + 4 * 3 + 4 * 2 + 4 * 4 + (8 + 8 + 4);
  EXPECT_LT(layout.byte_size(), word_aligned / 1.5);
}

TEST(BitLayout, RejectsBadWidths) {
  BitLayout layout;
  EXPECT_THROW(layout.add_group({{"zero", 0}}), std::invalid_argument);
  EXPECT_THROW(layout.add_group({{"wide", 65}}), std::invalid_argument);
}

}  // namespace
}  // namespace horus
