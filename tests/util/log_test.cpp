// Log level parsing and the HORUS_LOG environment contract. The old
// behaviour silently mapped any unrecognized value to kOff -- a typo like
// HORUS_LOG=inof turned logging off with no signal. parse_level() accepts
// the level set case-insensitively and level_from_env() warns (once) when
// the variable is set to garbage.
#include <gtest/gtest.h>

#include <cstdlib>

#include "horus/util/log.hpp"

namespace horus {
namespace {

TEST(LogParse, AcceptsCanonicalNames) {
  EXPECT_EQ(Log::parse_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(Log::parse_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(Log::parse_level("info"), LogLevel::kInfo);
  EXPECT_EQ(Log::parse_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(Log::parse_level("error"), LogLevel::kError);
  EXPECT_EQ(Log::parse_level("off"), LogLevel::kOff);
}

TEST(LogParse, IsCaseInsensitive) {
  // HORUS_LOG=Info means what the user meant.
  EXPECT_EQ(Log::parse_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(Log::parse_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(Log::parse_level("WaRn"), LogLevel::kWarn);
  EXPECT_EQ(Log::parse_level("OFF"), LogLevel::kOff);
}

TEST(LogParse, RejectsEverythingElse) {
  EXPECT_EQ(Log::parse_level(""), std::nullopt);
  EXPECT_EQ(Log::parse_level("inof"), std::nullopt);    // the classic typo
  EXPECT_EQ(Log::parse_level("info "), std::nullopt);   // no trimming
  EXPECT_EQ(Log::parse_level("verbose"), std::nullopt);
  EXPECT_EQ(Log::parse_level("2"), std::nullopt);
}

TEST(LogEnv, UnsetOrEmptyMeansOff) {
  ::unsetenv("HORUS_LOG");
  EXPECT_EQ(Log::level_from_env(), LogLevel::kOff);
  ::setenv("HORUS_LOG", "", 1);
  EXPECT_EQ(Log::level_from_env(), LogLevel::kOff);
}

TEST(LogEnv, RecognizedValueSetsLevel) {
  ::setenv("HORUS_LOG", "Info", 1);
  EXPECT_EQ(Log::level_from_env(), LogLevel::kInfo);
  ::setenv("HORUS_LOG", "error", 1);
  EXPECT_EQ(Log::level_from_env(), LogLevel::kError);
  ::unsetenv("HORUS_LOG");
}

TEST(LogEnv, UnrecognizedValueFallsBackToOffWithWarning) {
  // The fallback is still kOff -- but no longer silent. The warning goes
  // to stderr exactly once per process; here we only pin the return value
  // (capturing stderr portably is not worth the machinery).
  ::setenv("HORUS_LOG", "inof", 1);
  EXPECT_EQ(Log::level_from_env(), LogLevel::kOff);
  // A second bad read still behaves (and must not warn again).
  ::setenv("HORUS_LOG", "garbage", 1);
  EXPECT_EQ(Log::level_from_env(), LogLevel::kOff);
  ::unsetenv("HORUS_LOG");
}

}  // namespace
}  // namespace horus
