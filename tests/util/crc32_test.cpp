#include "horus/util/crc32.hpp"

#include <gtest/gtest.h>

#include "horus/util/rng.hpp"

namespace horus {
namespace {

TEST(Crc32, KnownVectors) {
  // Standard IEEE CRC-32 check values.
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xcbf43926u);
  EXPECT_EQ(crc32(to_bytes("")), 0x00000000u);
  EXPECT_EQ(crc32(to_bytes("a")), 0xe8b7be43u);
  EXPECT_EQ(crc32(to_bytes("The quick brown fox jumps over the lazy dog")),
            0x414fa339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Bytes data = to_bytes("hello, incremental world");
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t a = crc32(ByteSpan(data).first(split));
    std::uint32_t b = crc32_update(a, ByteSpan(data).subspan(split));
    EXPECT_EQ(b, crc32(data)) << "split at " << split;
  }
}

TEST(Crc32, LongSpansMatchBitwiseReference) {
  // The production implementation slices 8 bytes per iteration; check it
  // against a plain bit-at-a-time loop across sizes that exercise every
  // head/bulk/tail combination, including train-sized spans.
  auto reference = [](ByteSpan data) {
    std::uint32_t crc = 0xffffffffU;
    for (auto b : data) {
      crc ^= b;
      for (int k = 0; k < 8; ++k)
        crc = (crc & 1) ? 0xedb88320U ^ (crc >> 1) : crc >> 1;
    }
    return crc ^ 0xffffffffU;
  };
  Rng rng(11);
  for (std::size_t size : {1u, 7u, 8u, 9u, 15u, 16u, 17u, 63u, 64u, 1000u,
                           4096u, 5001u}) {
    Bytes data(size, 0);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(crc32(data), reference(data)) << "size " << size;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  Rng rng(7);
  Bytes data(256, 0);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  std::uint32_t ref = crc32(data);
  for (int i = 0; i < 100; ++i) {
    Bytes copy = data;
    std::size_t byte = rng.next_below(copy.size());
    copy[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    EXPECT_NE(crc32(copy), ref);
  }
}

TEST(Crc32, DistinctPrefixesDistinctCrcs) {
  // Appending bytes changes the checksum (no trivial prefix collisions).
  Bytes data;
  std::uint32_t prev = crc32(data);
  for (int i = 0; i < 64; ++i) {
    data.push_back(static_cast<std::uint8_t>(i));
    std::uint32_t cur = crc32(data);
    EXPECT_NE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace horus
