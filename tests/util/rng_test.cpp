#include "horus/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace horus {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
  }
  // Different seed diverges immediately (overwhelmingly likely).
  Rng a2(42);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceFrequencyRoughlyCorrect) {
  Rng rng(13);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    constexpr int kTrials = 20000;
    for (int i = 0; i < kTrials; ++i) hits += rng.chance(p) ? 1 : 0;
    double freq = static_cast<double>(hits) / kTrials;
    EXPECT_NEAR(freq, p, 0.02) << "p=" << p;
  }
}

TEST(Rng, BitsLookBalanced) {
  Rng rng(17);
  int ones = 0;
  constexpr int kWords = 1000;
  for (int i = 0; i < kWords; ++i) ones += __builtin_popcountll(rng.next_u64());
  double mean = static_cast<double>(ones) / kWords;
  EXPECT_NEAR(mean, 32.0, 1.0);
}

TEST(SplitMix, ExpandsDistinctState) {
  SplitMix64 sm(0);
  std::uint64_t a = sm.next();
  std::uint64_t b = sm.next();
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
}

}  // namespace
}  // namespace horus
