#include "horus/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace horus {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
  }
  // Different seed diverges immediately (overwhelmingly likely).
  Rng a2(42);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceFrequencyRoughlyCorrect) {
  Rng rng(13);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    constexpr int kTrials = 20000;
    for (int i = 0; i < kTrials; ++i) hits += rng.chance(p) ? 1 : 0;
    double freq = static_cast<double>(hits) / kTrials;
    EXPECT_NEAR(freq, p, 0.02) << "p=" << p;
  }
}

TEST(Rng, BitsLookBalanced) {
  Rng rng(17);
  int ones = 0;
  constexpr int kWords = 1000;
  for (int i = 0; i < kWords; ++i) ones += __builtin_popcountll(rng.next_u64());
  double mean = static_cast<double>(ones) / kWords;
  EXPECT_NEAR(mean, 32.0, 1.0);
}

TEST(SplitMix, ExpandsDistinctState) {
  SplitMix64 sm(0);
  std::uint64_t a = sm.next();
  std::uint64_t b = sm.next();
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
}

TEST(StreamSeed, SameTagSameStream) {
  EXPECT_EQ(stream_seed(42, fnv1a64("loss")), stream_seed(42, fnv1a64("loss")));
}

TEST(StreamSeed, DifferentTagsGiveIndependentStreams) {
  // The point of splitting: draws under one tag never depend on draws
  // under another, and the streams are pairwise distinct.
  std::uint64_t base = 1234;
  const char* tags[] = {"loss", "duplicate", "corrupt", "delay",
                        "plan-crash", "plan-partition"};
  for (const char* a : tags) {
    for (const char* b : tags) {
      if (a == b) continue;
      EXPECT_NE(stream_seed(base, fnv1a64(a)), stream_seed(base, fnv1a64(b)))
          << a << " vs " << b;
    }
  }
}

TEST(StreamSeed, DifferentBasesGiveDifferentStreams) {
  std::uint64_t tag = fnv1a64("loss");
  EXPECT_NE(stream_seed(1, tag), stream_seed(2, tag));
  // Tag 0 and base 0 are not degenerate.
  EXPECT_NE(stream_seed(0, 0), 0u);
}

TEST(Fnv, KnownVectorAndStepConsistency) {
  // FNV-1a of the empty string is the offset basis, by definition.
  EXPECT_EQ(fnv1a64(""), kFnvBasis);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  // fnv1a64_step folds 8 bytes little-endian: folding 'a' (0x61 + seven
  // zero bytes) over the basis must differ from the string hash (which has
  // no zero padding) but be deterministic.
  EXPECT_EQ(fnv1a64_step(kFnvBasis, 0x61), fnv1a64_step(kFnvBasis, 0x61));
  EXPECT_NE(fnv1a64_step(kFnvBasis, 0x61), fnv1a64_step(kFnvBasis, 0x62));
  // Order sensitivity: (a then b) != (b then a).
  EXPECT_NE(fnv1a64_step(fnv1a64_step(kFnvBasis, 1), 2),
            fnv1a64_step(fnv1a64_step(kFnvBasis, 2), 1));
}

}  // namespace
}  // namespace horus
