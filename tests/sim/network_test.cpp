#include "horus/sim/network.hpp"

#include <gtest/gtest.h>

#include <map>

#include "horus/util/serialize.hpp"

namespace horus::sim {
namespace {

struct Rig {
  Scheduler sched;
  SimNetwork net{sched, 1234};
  std::map<NodeId, std::vector<Bytes>> inbox;

  void attach(NodeId n) {
    net.attach(n, [this, n](NodeId, std::shared_ptr<const Bytes> data) {
      inbox[n].push_back(*data);
    });
  }
};

TEST(SimNetwork, DeliversWithLatency) {
  Rig r;
  r.attach(2);
  r.net.send(1, 2, to_bytes("hi"));
  EXPECT_TRUE(r.inbox[2].empty());  // not synchronous
  r.sched.run();
  ASSERT_EQ(r.inbox[2].size(), 1u);
  EXPECT_EQ(to_string(r.inbox[2][0]), "hi");
  EXPECT_GE(r.sched.now(), r.net.default_params().delay_min);
  EXPECT_LE(r.sched.now(), r.net.default_params().delay_max);
}

TEST(SimNetwork, SelfDeliveryWorks) {
  Rig r;
  r.attach(1);
  r.net.send(1, 1, to_bytes("me"));
  r.sched.run();
  EXPECT_EQ(r.inbox[1].size(), 1u);
}

TEST(SimNetwork, LossRateRoughlyHonoured) {
  Rig r;
  r.attach(2);
  LinkParams p;
  p.loss = 0.3;
  r.net.set_default_params(p);
  for (int i = 0; i < 2000; ++i) r.net.send(1, 2, to_bytes("x"));
  r.sched.run();
  double delivered = static_cast<double>(r.inbox[2].size()) / 2000;
  EXPECT_NEAR(delivered, 0.7, 0.05);
  EXPECT_GT(r.net.stats().dropped_loss, 0u);
}

TEST(SimNetwork, DuplicationDelivers2Copies) {
  Rig r;
  r.attach(2);
  LinkParams p;
  p.duplicate = 1.0;
  r.net.set_default_params(p);
  r.net.send(1, 2, to_bytes("x"));
  r.sched.run();
  EXPECT_EQ(r.inbox[2].size(), 2u);
  EXPECT_EQ(r.net.stats().duplicated, 1u);
}

TEST(SimNetwork, CorruptionFlipsBytes) {
  Rig r;
  r.attach(2);
  LinkParams p;
  p.corrupt = 1.0;
  r.net.set_default_params(p);
  Bytes orig(64, 0x42);
  r.net.send(1, 2, orig);
  r.sched.run();
  ASSERT_EQ(r.inbox[2].size(), 1u);
  EXPECT_NE(r.inbox[2][0], orig);
  EXPECT_EQ(r.inbox[2][0].size(), orig.size());
}

TEST(SimNetwork, JitterReordersBursts) {
  Rig r;
  r.attach(2);
  LinkParams p;
  p.delay_min = 10;
  p.delay_max = 1000;
  r.net.set_default_params(p);
  for (int i = 0; i < 50; ++i) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(i));
    r.net.send(1, 2, w.data());
  }
  r.sched.run();
  ASSERT_EQ(r.inbox[2].size(), 50u);
  bool reordered = false;
  for (std::size_t i = 0; i < 50; ++i) {
    Reader rd(r.inbox[2][i]);
    if (rd.u32() != i) reordered = true;
  }
  EXPECT_TRUE(reordered) << "wide jitter window should reorder a burst";
}

TEST(SimNetwork, MtuDropsOversize) {
  Rig r;
  r.attach(2);
  Bytes big(r.net.default_params().mtu + 1, 0);
  r.net.send(1, 2, big);
  r.sched.run();
  EXPECT_TRUE(r.inbox[2].empty());
  EXPECT_EQ(r.net.stats().dropped_mtu, 1u);
}

TEST(SimNetwork, CrashStopsDelivery) {
  Rig r;
  r.attach(2);
  r.net.send(1, 2, to_bytes("a"));
  r.net.crash(2);
  r.net.send(1, 2, to_bytes("b"));
  r.sched.run();
  EXPECT_TRUE(r.inbox[2].empty());  // in-flight 'a' discarded at delivery
  // Both datagrams end up dropped-at-delivery: 'a' was in flight when the
  // crash happened, 'b' was sent to an already-crashed node.
  EXPECT_EQ(r.net.stats().dropped_crashed, 2u);
  EXPECT_FALSE(r.net.is_attached(2));
}

TEST(SimNetwork, PartitionBlocksAcrossCells) {
  Rig r;
  r.attach(1);
  r.attach(2);
  r.attach(3);
  r.net.set_partitions({{1, 2}, {3}});
  EXPECT_TRUE(r.net.can_reach(1, 2));
  EXPECT_FALSE(r.net.can_reach(1, 3));
  r.net.send(1, 2, to_bytes("ok"));
  r.net.send(1, 3, to_bytes("blocked"));
  r.sched.run();
  EXPECT_EQ(r.inbox[2].size(), 1u);
  EXPECT_TRUE(r.inbox[3].empty());
  EXPECT_GT(r.net.stats().dropped_partition, 0u);
}

TEST(SimNetwork, PartitionAppliesToInFlight) {
  Rig r;
  r.attach(2);
  r.net.send(1, 2, to_bytes("x"));
  r.net.set_partitions({{1}, {2}});  // partition forms while in flight
  r.sched.run();
  EXPECT_TRUE(r.inbox[2].empty());
}

TEST(SimNetwork, HealRestoresDelivery) {
  Rig r;
  r.attach(2);
  r.net.set_partitions({{1}, {2}});
  r.net.send(1, 2, to_bytes("a"));
  r.sched.run();
  r.net.set_partitions({});
  r.net.send(1, 2, to_bytes("b"));
  r.sched.run();
  ASSERT_EQ(r.inbox[2].size(), 1u);
  EXPECT_EQ(to_string(r.inbox[2][0]), "b");
}

TEST(SimNetwork, PerLinkOverrides) {
  Rig r;
  r.attach(2);
  r.attach(3);
  LinkParams lossy;
  lossy.loss = 1.0;
  r.net.set_link_params(1, 2, lossy);
  r.net.send(1, 2, to_bytes("lost"));
  r.net.send(1, 3, to_bytes("kept"));
  r.sched.run();
  EXPECT_TRUE(r.inbox[2].empty());
  EXPECT_EQ(r.inbox[3].size(), 1u);
  r.net.clear_link_params(1, 2);
  r.net.send(1, 2, to_bytes("now"));
  r.sched.run();
  EXPECT_EQ(r.inbox[2].size(), 1u);
}

TEST(SimNetwork, StatsAccumulate) {
  Rig r;
  r.attach(2);
  r.net.send(1, 2, to_bytes("abc"));
  r.sched.run();
  EXPECT_EQ(r.net.stats().sent, 1u);
  EXPECT_EQ(r.net.stats().delivered, 1u);
  EXPECT_EQ(r.net.stats().bytes_sent, 3u);
  r.net.reset_stats();
  EXPECT_EQ(r.net.stats().sent, 0u);
}

TEST(FaultPolicy, DecisionIsPureFunctionOfSeedAndIndex) {
  // Two policies with the same seed, fed the same index sequence, agree on
  // every decision -- the foundation of horus-check's record/replay.
  LinkParams p;
  p.loss = 0.2;
  p.duplicate = 0.1;
  p.corrupt = 0.05;
  RngFaultPolicy a(99), b(99);
  for (std::uint64_t i = 0; i < 500; ++i) {
    FaultDecision da = a.decide(i, 1, 2, 100, p);
    FaultDecision db = b.decide(i, 1, 2, 100, p);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.corrupt_seed, db.corrupt_seed);
    EXPECT_EQ(da.delay, db.delay);
    EXPECT_EQ(da.dup_delay, db.dup_delay);
  }
}

TEST(FaultPolicy, ChangingOneDecisionDoesNotShiftOthers) {
  // Every decision consumes a fixed number of draws from each split
  // stream, so changing the *parameters* of some decisions (here: forcing
  // loss on and off) must leave all other decisions' draws untouched.
  // This is what makes the shrinker's masking sound.
  LinkParams quiet;
  quiet.loss = 0.0;
  quiet.duplicate = 0.0;
  LinkParams noisy = quiet;
  noisy.loss = 1.0;
  noisy.duplicate = 1.0;
  noisy.corrupt = 1.0;

  RngFaultPolicy a(7), b(7);
  for (std::uint64_t i = 0; i < 200; ++i) {
    // Policy a sees quiet params throughout; policy b gets noisy params on
    // every third decision.
    FaultDecision da = a.decide(i, 1, 2, 64, quiet);
    FaultDecision db = b.decide(i, 1, 2, 64, i % 3 == 0 ? noisy : quiet);
    if (i % 3 != 0) {
      EXPECT_EQ(da.drop, db.drop) << "draw shifted at index " << i;
      EXPECT_EQ(da.duplicate, db.duplicate);
      EXPECT_EQ(da.corrupt_seed, db.corrupt_seed);
      EXPECT_EQ(da.delay, db.delay) << "delay draw shifted at index " << i;
    }
  }
}

TEST(FaultPolicy, CustomPolicyInstalls) {
  // A policy that drops everything: deliveries stop, decisions are
  // counted.
  struct DropAll final : FaultPolicy {
    FaultDecision decide(std::uint64_t, NodeId, NodeId, std::size_t,
                         const LinkParams&) override {
      FaultDecision d;
      d.drop = true;
      return d;
    }
  };
  Rig r;
  r.attach(2);
  r.net.set_fault_policy(std::make_shared<DropAll>());
  for (int i = 0; i < 10; ++i) r.net.send(1, 2, to_bytes("x"));
  r.sched.run();
  EXPECT_TRUE(r.inbox[2].empty());
  EXPECT_EQ(r.net.decisions_made(), 10u);
}

TEST(SimNetwork, SendMultiDeliversToEveryDestination) {
  Rig r;
  r.attach(2);
  r.attach(3);
  r.attach(4);
  const NodeId dsts[] = {2, 3, 4};
  r.net.send_multi(1, dsts, to_bytes("burst"));
  r.sched.run();
  for (NodeId n : {NodeId{2}, NodeId{3}, NodeId{4}}) {
    ASSERT_EQ(r.inbox[n].size(), 1u) << "node " << n;
    EXPECT_EQ(to_string(r.inbox[n][0]), "burst");
  }
  // Accounting is per destination, exactly like three send() calls.
  EXPECT_EQ(r.net.stats().sent, 3u);
  EXPECT_EQ(r.net.decisions_made(), 3u);
}

TEST(SimNetwork, SendMultiFatesAlignWithSendLoop) {
  // send_multi(src, dsts, data) must consume fault decisions exactly as
  // the equivalent send() loop would: same seed => same per-destination
  // outcomes, so a repro trace is valid whichever egress path ran.
  auto run = [](bool batched) {
    Rig r;
    for (NodeId n = 2; n <= 9; ++n) r.attach(n);
    LinkParams p;
    p.loss = 0.5;
    p.duplicate = 0.2;
    r.net.set_default_params(p);
    std::vector<NodeId> dsts;
    for (NodeId n = 2; n <= 9; ++n) dsts.push_back(n);
    for (int round = 0; round < 10; ++round) {
      if (batched) {
        r.net.send_multi(1, dsts, to_bytes("x"));
      } else {
        for (NodeId n : dsts) r.net.send(1, n, to_bytes("x"));
      }
    }
    r.sched.run();
    std::map<NodeId, std::size_t> counts;
    for (const auto& [n, msgs] : r.inbox) counts[n] = msgs.size();
    return std::pair(counts, r.net.decisions_made());
  };
  auto [loop_counts, loop_decisions] = run(false);
  auto [multi_counts, multi_decisions] = run(true);
  EXPECT_EQ(loop_decisions, multi_decisions);
  EXPECT_EQ(loop_counts, multi_counts)
      << "batched egress changed per-destination fates";
}

TEST(FaultPolicy, DecisionIndexSkipsPrePolicyDrops) {
  // MTU and partition drops happen before the fault stage; they must not
  // consume decision indices (a shrinker mask names post-filter sends).
  Rig r;
  r.attach(2);
  LinkParams p;
  p.mtu = 4;
  r.net.set_default_params(p);
  r.net.send(1, 2, Bytes(100, 0xab));  // over MTU: no decision
  r.net.send(1, 2, to_bytes("ok"));
  r.sched.run();
  EXPECT_EQ(r.net.decisions_made(), 1u);
  EXPECT_EQ(r.net.stats().dropped_mtu, 1u);
}

}  // namespace
}  // namespace horus::sim
