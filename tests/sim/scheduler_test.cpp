#include "horus/sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace horus::sim {
namespace {

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(30, [&] { order.push_back(3); });
  s.schedule(10, [&] { order.push_back(1); });
  s.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, FifoAmongEqualTimes) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, NestedScheduling) {
  Scheduler s;
  std::vector<std::pair<Time, int>> log;
  s.schedule(10, [&] {
    log.push_back({s.now(), 1});
    s.schedule(5, [&] { log.push_back({s.now(), 2}); });
    s.schedule(0, [&] { log.push_back({s.now(), 3}); });
  });
  s.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], (std::pair<Time, int>{10, 1}));
  EXPECT_EQ(log[1], (std::pair<Time, int>{10, 3}));  // same-time, after parent
  EXPECT_EQ(log[2], (std::pair<Time, int>{15, 2}));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  int ran = 0;
  TimerId id = s.schedule(10, [&] { ++ran; });
  s.schedule(20, [&] { ++ran; });
  s.cancel(id);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(ran, 1);
}

TEST(Scheduler, CancelAfterFireIsSafe) {
  Scheduler s;
  TimerId id = s.schedule(1, [] {});
  s.run();
  s.cancel(id);  // no effect, no crash
  s.schedule(1, [] {});
  EXPECT_EQ(s.run(), 1u);
}

TEST(Scheduler, RunUntilAdvancesClockToDeadline) {
  Scheduler s;
  int ran = 0;
  s.schedule(100, [&] { ++ran; });
  s.schedule(200, [&] { ++ran; });
  EXPECT_EQ(s.run_until(150), 1u);
  EXPECT_EQ(s.now(), 150u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.run_until(300), 1u);
  EXPECT_EQ(s.now(), 300u);
}

TEST(Scheduler, RunForIsRelative) {
  Scheduler s;
  s.schedule(10, [] {});
  s.run();  // now = 10
  int ran = 0;
  s.schedule(5, [&] { ++ran; });
  s.schedule(50, [&] { ++ran; });
  s.run_for(20);  // until t=30
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, StepRunsOne) {
  Scheduler s;
  int ran = 0;
  s.schedule(1, [&] { ++ran; });
  s.schedule(2, [&] { ++ran; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, PendingCountsCancellations) {
  Scheduler s;
  TimerId a = s.schedule(1, [] {});
  s.schedule(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_FALSE(s.empty());
  s.run();
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, ManyEventsStaySorted) {
  Scheduler s;
  Time last = 0;
  bool monotone = true;
  for (int i = 0; i < 1000; ++i) {
    Duration d = static_cast<Duration>((i * 7919) % 1000);
    s.schedule(d, [&, d] {
      if (s.now() < last) monotone = false;
      last = s.now();
    });
  }
  s.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace horus::sim
