#include "horus/sim/realtime.hpp"

#include <gtest/gtest.h>

#include "horus/api/system.hpp"

namespace horus::sim {
namespace {

TEST(RealTime, EventsFireNearWallClock) {
  Scheduler sched;
  std::vector<Time> fired;
  sched.schedule(20'000, [&] { fired.push_back(sched.now()); });   // 20ms
  sched.schedule(60'000, [&] { fired.push_back(sched.now()); });   // 60ms
  RealTimeDriver driver(sched);
  auto start = std::chrono::steady_clock::now();
  driver.run_for(std::chrono::milliseconds(100));
  auto real_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 20'000u);
  EXPECT_EQ(fired[1], 60'000u);
  EXPECT_GE(real_ms, 95);  // actually waited
}

TEST(RealTime, TimeFactorAccelerates) {
  Scheduler sched;
  int fired = 0;
  // 1 virtual second of events, run at 100x: done in ~10ms of real time.
  for (int i = 1; i <= 10; ++i) {
    sched.schedule(static_cast<Duration>(i) * 100'000, [&] { ++fired; });
  }
  RealTimeDriver driver(sched, 100.0);
  driver.run_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fired, 10);
}

TEST(RealTime, DrivesAWholeHorusWorld) {
  // A live two-member group: group formation and a multicast complete
  // within a wall-clock budget (accelerated 50x to keep the test fast).
  HorusSystem sys;
  constexpr GroupId kGroup{3};
  auto& a = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  auto& b = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  int delivered = 0;
  b.on_upcall([&](Group&, UpEvent& ev) {
    if (ev.type == UpType::kCast) ++delivered;
  });
  RealTimeDriver driver(sys.scheduler(), 50.0);
  a.join(kGroup);
  driver.run_for(std::chrono::milliseconds(20));
  b.join(kGroup, a.address());
  driver.run_for(std::chrono::milliseconds(40));
  a.cast(kGroup, Message::from_string("live"));
  driver.run_for(std::chrono::milliseconds(40));
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace horus::sim
