#include "horus/sim/realtime.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "horus/api/system.hpp"

namespace horus::sim {
namespace {

TEST(RealTime, EventsFireNearWallClock) {
  Scheduler sched;
  std::vector<Time> fired;
  sched.schedule(20'000, [&] { fired.push_back(sched.now()); });   // 20ms
  sched.schedule(60'000, [&] { fired.push_back(sched.now()); });   // 60ms
  RealTimeDriver driver(sched);
  auto start = std::chrono::steady_clock::now();
  driver.run_for(std::chrono::milliseconds(100));
  auto real_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 20'000u);
  EXPECT_EQ(fired[1], 60'000u);
  EXPECT_GE(real_ms, 95);  // actually waited
}

TEST(RealTime, TimeFactorAccelerates) {
  Scheduler sched;
  int fired = 0;
  // 1 virtual second of events, run at 100x: done in ~10ms of real time.
  for (int i = 1; i <= 10; ++i) {
    sched.schedule(static_cast<Duration>(i) * 100'000, [&] { ++fired; });
  }
  RealTimeDriver driver(sched, 100.0);
  driver.run_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fired, 10);
}

TEST(RealTime, WakesForTheNextDueEventNotTheSleepCap) {
  // Regression for the fixed 200us busy-sleep: the driver now asks the
  // scheduler for the next due timestamp and sleeps until that moment.
  // With a deliberately huge sleep cap, firing the 30ms event on time
  // proves the wakeup comes from next_due(), not from cap-sized polling.
  Scheduler sched;
  std::vector<Time> fired;
  sched.schedule(30'000, [&] { fired.push_back(sched.now()); });
  RealTimeDriver driver(sched);
  driver.set_max_sleep(std::chrono::microseconds(1'000'000));
  std::size_t executed = driver.run_for(std::chrono::milliseconds(60));
  EXPECT_EQ(executed, 1u);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 30'000u);
}

TEST(RealTime, DrivesAMultiShardWorld) {
  // Sharded mode end to end: scheduler events enqueue protocol work onto
  // the endpoints' shard threads while this thread pumps the clock; the
  // registered executors are drained before run_for returns.
  HorusSystem::Options opts;
  opts.shards = 2;
  opts.net.loss = 0.0;
  HorusSystem sys(opts);
  constexpr GroupId kG1{11};
  constexpr GroupId kG2{12};
  auto& a = sys.create_endpoint("NAK:COM");
  auto& b = sys.create_endpoint("NAK:COM");
  std::atomic<int> got_g1{0};
  std::atomic<int> got_g2{0};
  b.on_upcall([&](Group& g, UpEvent& ev) {
    if (ev.type != UpType::kCast) return;
    (g.gid() == kG1 ? got_g1 : got_g2).fetch_add(1);
  });
  RealTimeDriver driver(sys.scheduler(), 50.0);
  driver.add_executor(a.executor());
  driver.add_executor(b.executor());
  std::vector<Address> members{a.address(), b.address()};
  for (GroupId gid : {kG1, kG2}) {
    a.join(gid);
    b.join(gid);
  }
  driver.run_for(std::chrono::milliseconds(20));
  for (GroupId gid : {kG1, kG2}) {
    a.install_view(gid, members);
    b.install_view(gid, members);
  }
  driver.run_for(std::chrono::milliseconds(20));
  for (int i = 0; i < 5; ++i) {
    a.cast(kG1, Message::from_string("one"));
    a.cast(kG2, Message::from_string("two"));
  }
  driver.run_for(std::chrono::milliseconds(80));
  EXPECT_EQ(got_g1.load(), 5);
  EXPECT_EQ(got_g2.load(), 5);
}

TEST(RealTime, DrivesAWholeHorusWorld) {
  // A live two-member group: group formation and a multicast complete
  // within a wall-clock budget (accelerated 50x to keep the test fast).
  HorusSystem sys;
  constexpr GroupId kGroup{3};
  auto& a = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  auto& b = sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  int delivered = 0;
  b.on_upcall([&](Group&, UpEvent& ev) {
    if (ev.type == UpType::kCast) ++delivered;
  });
  RealTimeDriver driver(sys.scheduler(), 50.0);
  a.join(kGroup);
  driver.run_for(std::chrono::milliseconds(20));
  b.join(kGroup, a.address());
  driver.run_for(std::chrono::milliseconds(40));
  a.cast(kGroup, Message::from_string("live"));
  driver.run_for(std::chrono::milliseconds(40));
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace horus::sim
