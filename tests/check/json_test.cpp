// The minimal JSON class behind horus-check artifacts: exact 64-bit
// integers, ordered keys, and a parse/dump round trip that preserves both.
#include "horus/check/json.hpp"

#include <gtest/gtest.h>

namespace horus::check {
namespace {

TEST(CheckJson, ScalarRoundTrip) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json("hi \"there\"\n").dump(), "\"hi \\\"there\\\"\\n\"");
  EXPECT_EQ(Json(42).dump(), "42");
}

TEST(CheckJson, ExactU64) {
  // Seeds and hashes use the full 64-bit range; a double round trip would
  // silently corrupt them.
  std::uint64_t big = 18446744073709551615ull;
  Json j(big);
  EXPECT_EQ(j.as_u64(), big);
  Json back = Json::parse(j.dump());
  EXPECT_EQ(back.as_u64(), big);
}

TEST(CheckJson, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["zebra"] = Json(1);
  j["alpha"] = Json(2);
  j["mid"] = Json(3);
  EXPECT_EQ(j.dump(), R"({"zebra":1,"alpha":2,"mid":3})");
  EXPECT_EQ(j.entries()[0].first, "zebra");
  EXPECT_EQ(j.at("alpha").as_u64(), 2u);
  EXPECT_EQ(j.find("nope"), nullptr);
  EXPECT_THROW(j.at("nope"), std::exception);
}

TEST(CheckJson, NestedRoundTrip) {
  Json j = Json::object();
  j["list"] = Json::array();
  j["list"].push(Json(1));
  j["list"].push(Json("two"));
  j["list"].push(Json(3.5));
  j["inner"]["deep"] = Json(false);
  Json back = Json::parse(j.dump(2));
  EXPECT_EQ(back.at("list").items().size(), 3u);
  EXPECT_EQ(back.at("list").items()[1].as_string(), "two");
  EXPECT_DOUBLE_EQ(back.at("list").items()[2].as_double(), 3.5);
  EXPECT_FALSE(back.at("inner").at("deep").as_bool());
}

TEST(CheckJson, ParseErrorsCarryOffset) {
  EXPECT_THROW(Json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{} trailing"), std::runtime_error);
}

TEST(CheckJson, WrongTypeAccessThrows) {
  Json j(42);
  EXPECT_THROW(j.as_string(), std::runtime_error);
  EXPECT_THROW(j.items(), std::runtime_error);
  // as_double accepts integers (scenario fields like loss=0 parse as int).
  EXPECT_DOUBLE_EQ(j.as_double(), 42.0);
}

}  // namespace
}  // namespace horus::check
