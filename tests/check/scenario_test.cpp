// Scenario specs: oracle parsing, sanitization, JSON round trips, and the
// deterministic derivation of the scenario-level fault plan.
#include "horus/check/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace horus::check {
namespace {

TEST(CheckScenario, OracleParsing) {
  EXPECT_EQ(parse_oracles("auto"), kAutoOracles);
  EXPECT_EQ(parse_oracles("all"), kAllOracles);
  OracleSet two = parse_oracles("total-order,causal");
  EXPECT_EQ(two, static_cast<OracleSet>(Oracle::kTotalOrder) |
                     static_cast<OracleSet>(Oracle::kCausal));
  EXPECT_EQ(oracles_to_string(two), "total-order,causal");
  EXPECT_THROW(parse_oracles("totally-ordered"), std::invalid_argument);
}

TEST(CheckScenario, EveryOracleNameParsesBack) {
  for (std::uint32_t bit = 0; bit < 7; ++bit) {
    auto o = static_cast<Oracle>(1u << bit);
    EXPECT_EQ(parse_oracles(oracle_name(o)), static_cast<OracleSet>(o))
        << oracle_name(o);
  }
}

TEST(CheckScenario, SanitizeClampsImpossibleBudgets) {
  Scenario s;
  s.members = 1;
  s.crashes = 5;
  s.partitions = 2;
  s.delay_min = 500;
  s.delay_max = 100;
  s.sanitize();
  EXPECT_GE(s.members, 2u);
  // Crashes never reduce the group below two live members.
  EXPECT_LE(static_cast<std::size_t>(s.crashes), s.members - 2);
  EXPECT_GE(s.delay_max, s.delay_min);
}

TEST(CheckScenario, JsonRoundTrip) {
  Scenario s;
  s.stack = "TOTAL:STABLE:MBRSHIP:FRAG:NAK:COM";
  s.members = 5;
  s.rounds = 3;
  s.loss = 0.125;
  s.crashes = 2;
  s.partitions = 1;
  s.oracles = parse_oracles("virtual-synchrony,stability");
  Scenario back = Scenario::from_json(Json::parse(s.to_json().dump()));
  EXPECT_EQ(back.stack, s.stack);
  EXPECT_EQ(back.members, s.members);
  EXPECT_EQ(back.rounds, s.rounds);
  EXPECT_DOUBLE_EQ(back.loss, s.loss);
  EXPECT_EQ(back.crashes, s.crashes);
  EXPECT_EQ(back.partitions, s.partitions);
  EXPECT_EQ(back.oracles, s.oracles);
}

TEST(CheckScenario, PlanDerivationIsDeterministic) {
  Scenario s;
  s.crashes = 2;
  s.partitions = 1;
  s.members = 6;
  Plan a = derive_plan(s, 12345);
  Plan b = derive_plan(s, 12345);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].member, b[i].member);
    EXPECT_EQ(a[i].cell, b[i].cell);
  }
  // A different seed gives a different plan (overwhelmingly likely; this
  // seed pair is checked in).
  Plan c = derive_plan(s, 54321);
  bool same = a.size() == c.size();
  for (std::size_t i = 0; same && i < a.size(); ++i) {
    same = a[i].kind == c[i].kind && a[i].at == c[i].at &&
           a[i].member == c[i].member && a[i].cell == c[i].cell;
  }
  EXPECT_FALSE(same);
}

TEST(CheckScenario, PlanRespectsBudgetsAndOrdering) {
  Scenario s;
  s.members = 6;
  s.crashes = 2;
  s.partitions = 2;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Plan p = derive_plan(s, seed);
    int crashes = 0, parts = 0, heals = 0;
    std::vector<std::size_t> victims;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (i > 0) EXPECT_LE(p[i - 1].at, p[i].at) << "plan must be sorted";
      switch (p[i].kind) {
        case FaultEvent::Kind::kCrash:
          ++crashes;
          EXPECT_NE(p[i].member, 0u) << "member 0 is the contact point";
          EXPECT_LT(p[i].member, s.members);
          victims.push_back(p[i].member);
          break;
        case FaultEvent::Kind::kPartition:
          ++parts;
          EXPECT_FALSE(p[i].cell.empty());
          EXPECT_LT(p[i].cell.size(), s.members) << "cell B must be non-empty";
          break;
        case FaultEvent::Kind::kHeal:
          ++heals;
          break;
        case FaultEvent::Kind::kSwitch:
          ADD_FAILURE() << "no switch_spec, so no switch event";
          break;
      }
    }
    EXPECT_EQ(crashes, s.crashes);
    EXPECT_EQ(parts, s.partitions);
    EXPECT_EQ(heals, parts) << "every partition has a matching heal";
    std::sort(victims.begin(), victims.end());
    EXPECT_EQ(std::adjacent_find(victims.begin(), victims.end()),
              victims.end())
        << "crash victims are distinct";
  }
}

TEST(CheckScenario, PlanJsonRoundTrip) {
  Scenario s;
  s.crashes = 1;
  s.partitions = 1;
  s.switch_spec = "TOTAL:MBRSHIP:FRAG:MCAST:NNAK:COM";
  Plan p = derive_plan(s, 7);
  Plan back = plan_from_json(Json::parse(plan_to_json(p).dump()));
  ASSERT_EQ(back.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(back[i].kind, p[i].kind);
    EXPECT_EQ(back[i].at, p[i].at);
    EXPECT_EQ(back[i].member, p[i].member);
    EXPECT_EQ(back[i].cell, p[i].cell);
    EXPECT_EQ(back[i].spec, p[i].spec);
  }
}

TEST(CheckScenario, SwitchSpecAddsOneSwitchEvent) {
  Scenario s;
  s.crashes = 1;
  s.switch_spec = "TOTAL:MBRSHIP:FRAG:MCAST:NNAK:COM";
  const sim::Duration window =
      static_cast<sim::Duration>(s.rounds) * s.round_gap;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Plan p = derive_plan(s, seed);
    int switches = 0;
    for (const FaultEvent& e : p) {
      if (e.kind != FaultEvent::Kind::kSwitch) continue;
      ++switches;
      EXPECT_EQ(e.spec, s.switch_spec);
      // Seed-derived time lands inside the middle half of the workload.
      EXPECT_GE(e.at, window / 4);
      EXPECT_LT(e.at, window);
    }
    EXPECT_EQ(switches, 1) << "seed " << seed;
  }
  // A pinned offset is taken verbatim, not derived.
  s.switch_at = 123 * sim::kMillisecond;
  Plan pinned = derive_plan(s, 5);
  auto it = std::find_if(pinned.begin(), pinned.end(), [](const FaultEvent& e) {
    return e.kind == FaultEvent::Kind::kSwitch;
  });
  ASSERT_NE(it, pinned.end());
  EXPECT_EQ(it->at, 123 * sim::kMillisecond);
}

TEST(CheckScenario, SwitchScenarioJsonRoundTrip) {
  Scenario s;
  s.switch_spec = "TOTAL:MBRSHIP:FRAG:NAK:COMPRESS:COM";
  s.switch_at = 250 * sim::kMillisecond;
  Scenario back = Scenario::from_json(Json::parse(s.to_json().dump()));
  EXPECT_EQ(back.switch_spec, s.switch_spec);
  EXPECT_EQ(back.switch_at, s.switch_at);
  // Pre-reconfiguration artifacts (no switch keys) still load.
  Scenario plain;
  Json j = plain.to_json();
  EXPECT_EQ(j.find("switch_spec"), nullptr);
  Scenario old = Scenario::from_json(Json::parse(j.dump()));
  EXPECT_TRUE(old.switch_spec.empty());
  EXPECT_EQ(old.switch_at, 0u);
}

}  // namespace
}  // namespace horus::check
