// Shrinking and replay: a failing run shrinks to a smaller fault schedule
// that still fails, the artifact round-trips through JSON, and replaying
// it reproduces the identical event and dispatch hashes.
#include "horus/check/shrink.hpp"

#include <gtest/gtest.h>

#include "horus/check/explorer.hpp"

namespace horus::check {
namespace {

Scenario broken_scenario() {
  Scenario s;
  s.stack = "TOTAL!:STABLE:MBRSHIP:FRAG:NAK:COM";
  s.members = 3;
  s.rounds = 4;
  s.settle = 4 * sim::kSecond;
  return s;
}

/// Find the first failing seed of the broken stack (bounded; the variant
/// is designed to fail almost immediately).
std::uint64_t failing_seed(const Scenario& s) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    if (!run_scenario(s, seed).ok()) return seed;
  }
  ADD_FAILURE() << "no failing seed within budget";
  return 0;
}

TEST(CheckShrink, ShrinksAndReplaysBitIdentically) {
  Scenario s = broken_scenario();
  std::uint64_t seed = failing_seed(s);
  ASSERT_NE(seed, 0u);

  RunOptions rec;
  rec.record = true;
  RunResult failing = run_scenario(s, seed, rec);
  ASSERT_FALSE(failing.ok());

  ShrinkStats st;
  Repro repro = shrink(s, seed, failing, &st, /*budget=*/120);
  EXPECT_LE(st.plan_after, st.plan_before);
  EXPECT_LE(st.faults_after, st.faults_before);
  EXPECT_GT(st.runs, 0);
  EXPECT_FALSE(repro.violations.empty());

  // The artifact replays bit-identically -- including through its JSON
  // serialization (what tools/horus-check --replay consumes).
  Repro reloaded = Repro::load(repro.dump());
  EXPECT_EQ(reloaded.seed, repro.seed);
  EXPECT_EQ(reloaded.mask, repro.mask);
  RunResult r = replay(reloaded);
  EXPECT_FALSE(r.ok()) << "shrunken repro no longer fails";
  EXPECT_EQ(r.event_hash, repro.event_hash);
  EXPECT_EQ(r.dispatch_hash, repro.dispatch_hash);
}

TEST(CheckShrink, ShrinkRespectsBudget) {
  Scenario s = broken_scenario();
  std::uint64_t seed = failing_seed(s);
  ASSERT_NE(seed, 0u);
  RunOptions rec;
  rec.record = true;
  RunResult failing = run_scenario(s, seed, rec);
  ShrinkStats st;
  (void)shrink(s, seed, failing, &st, /*budget=*/5);
  EXPECT_LE(st.runs, 5);
}

TEST(CheckShrink, ExplorerProducesReplayableRepro) {
  Scenario s = broken_scenario();
  ExploreOptions o;
  o.num_seeds = 20;
  o.shrink_budget = 120;
  ExploreResult r = explore(s, o);
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(r.repro.has_value());
  ASSERT_TRUE(r.shrink_stats.has_value());
  RunResult rr = replay(*r.repro);
  EXPECT_FALSE(rr.ok());
  EXPECT_EQ(rr.event_hash, r.repro->event_hash);
  EXPECT_EQ(rr.dispatch_hash, r.repro->dispatch_hash);
}

TEST(CheckShrink, UnshrunkFailureStillGetsArtifact) {
  Scenario s = broken_scenario();
  ExploreOptions o;
  o.num_seeds = 20;
  o.shrink_failures = false;
  ExploreResult r = explore(s, o);
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(r.repro.has_value()) << "no-shrink mode must still emit one";
  RunResult rr = replay(*r.repro);
  EXPECT_FALSE(rr.ok());
  EXPECT_EQ(rr.event_hash, r.repro->event_hash);
  EXPECT_EQ(rr.dispatch_hash, r.repro->dispatch_hash);
}

TEST(CheckShrink, ReproJsonRoundTrip) {
  Repro r;
  r.scenario.stack = "CAUSAL:MBRSHIP:FRAG:NAK:COM";
  r.scenario.members = 5;
  r.seed = 0xdeadbeefcafef00dull;
  r.event_hash = 0xffffffffffffffffull;
  r.dispatch_hash = 1;
  r.mask = {3, 1, 2};
  FaultEvent e;
  e.kind = FaultEvent::Kind::kPartition;
  e.at = 123456;
  e.cell = {0, 2};
  r.plan.push_back(e);
  r.violations.push_back("[total-order] member 1: example");

  Repro back = Repro::load(r.dump());
  EXPECT_EQ(back.version, r.version);
  EXPECT_EQ(back.scenario.stack, r.scenario.stack);
  EXPECT_EQ(back.scenario.members, r.scenario.members);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.event_hash, r.event_hash);
  EXPECT_EQ(back.dispatch_hash, r.dispatch_hash);
  EXPECT_EQ(back.mask, r.mask);
  ASSERT_EQ(back.plan.size(), 1u);
  EXPECT_EQ(back.plan[0].kind, FaultEvent::Kind::kPartition);
  EXPECT_EQ(back.plan[0].cell, r.plan[0].cell);
  EXPECT_EQ(back.violations, r.violations);
}

}  // namespace
}  // namespace horus::check
