// Oracle unit tests over synthetic observation logs: each oracle must fire
// on a hand-built violating log and stay silent on the clean variant.
#include "horus/check/oracle.hpp"

#include <gtest/gtest.h>

namespace horus::check {
namespace {

Obs view(std::uint64_t seq, std::uint64_t coord,
         std::vector<std::uint64_t> members) {
  Obs o;
  o.kind = Obs::Kind::kView;
  o.view_seq = seq;
  o.view_coord = coord;
  o.view_members = std::move(members);
  return o;
}

Obs cast(std::uint64_t sender_index, std::uint32_t round,
         std::uint64_t view_seq, std::vector<std::uint64_t> ctx = {}) {
  Obs o;
  o.kind = Obs::Kind::kCast;
  o.source = sender_index + 1;  // address = index + 1, as in real runs
  o.msg_id = round + 1;
  o.decoded = true;
  o.payload.sender = sender_index;
  o.payload.round = round;
  o.payload.index = 0;
  o.payload.view_seq = view_seq;
  o.payload.ctx = std::move(ctx);
  return o;
}

/// A two-member log where both saw view 1 and the given casts.
RunLog two_members(std::vector<Obs> a, std::vector<Obs> b) {
  RunLog log;
  log.sent = {10, 10};
  log.casts_per_round = 1;
  RunLog::Member m0;
  m0.index = 0;
  m0.address = 1;
  m0.obs.push_back(view(1, 1, {1, 2}));
  for (Obs& o : a) m0.obs.push_back(std::move(o));
  RunLog::Member m1;
  m1.index = 1;
  m1.address = 2;
  m1.obs.push_back(view(1, 1, {1, 2}));
  for (Obs& o : b) m1.obs.push_back(std::move(o));
  log.members = {std::move(m0), std::move(m1)};
  return log;
}

OracleSet only(Oracle o) { return static_cast<OracleSet>(o); }

TEST(CheckOracle, CleanLogHasNoViolations) {
  RunLog log = two_members({cast(0, 0, 1), cast(1, 0, 1)},
                           {cast(0, 0, 1), cast(1, 0, 1)});
  EXPECT_TRUE(evaluate(kAllOracles, log).empty());
}

TEST(CheckOracle, DuplicateDeliveryCaught) {
  RunLog log = two_members({cast(0, 0, 1), cast(0, 0, 1)}, {cast(0, 0, 1)});
  auto v = evaluate(only(Oracle::kNoDupNoCreation), log);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].oracle, Oracle::kNoDupNoCreation);
  EXPECT_EQ(v[0].member, 0u);
  EXPECT_NE(v[0].detail.find("twice"), std::string::npos);
}

TEST(CheckOracle, NeverCastMessageCaught) {
  Obs phantom = cast(0, 9, 1);  // round 9, but only 10 casts (rounds 0..9)
  RunLog log = two_members({}, {std::move(phantom)});
  log.sent = {5, 5};  // ...actually only 5 were ever cast
  auto v = evaluate(only(Oracle::kNoDupNoCreation), log);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].detail.find("never cast"), std::string::npos);
}

TEST(CheckOracle, ForgedSenderCaught) {
  Obs forged = cast(0, 0, 1);
  forged.source = 2;  // claims payload of member 0 but came from address 2
  RunLog log = two_members({std::move(forged)}, {});
  auto v = evaluate(only(Oracle::kNoDupNoCreation), log);
  ASSERT_EQ(v.size(), 1u);
}

TEST(CheckOracle, VsyncDifferentSetsSameTransitionCaught) {
  // Both members close view 1 into the same view 2, but member 1 missed a
  // message: a virtual synchrony violation.
  RunLog log = two_members(
      {cast(0, 0, 1), cast(1, 0, 1), view(2, 1, {1, 2})},
      {cast(0, 0, 1), view(2, 1, {1, 2})});
  auto v = evaluate(only(Oracle::kVirtualSynchrony), log);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].oracle, Oracle::kVirtualSynchrony);
}

TEST(CheckOracle, VsyncDifferentSuccessorsNotCompared) {
  // Extended virtual synchrony: a partitioned minority transitions into a
  // *different* successor view and owes the majority nothing.
  RunLog log = two_members(
      {cast(0, 0, 1), cast(1, 0, 1), view(2, 1, {1})},
      {cast(0, 0, 1), view(2, 2, {2})});
  EXPECT_TRUE(evaluate(only(Oracle::kVirtualSynchrony), log).empty());
}

TEST(CheckOracle, VsyncOpenFinalEpochNotCompared) {
  // No successor view: the member may simply not have finished receiving.
  RunLog log = two_members({cast(0, 0, 1), cast(1, 0, 1)}, {cast(0, 0, 1)});
  EXPECT_TRUE(evaluate(only(Oracle::kVirtualSynchrony), log).empty());
}

TEST(CheckOracle, TotalOrderInversionCaught) {
  RunLog log = two_members({cast(0, 0, 1), cast(1, 0, 1)},
                           {cast(1, 0, 1), cast(0, 0, 1)});
  auto v = evaluate(only(Oracle::kTotalOrder), log);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].oracle, Oracle::kTotalOrder);
}

TEST(CheckOracle, TotalOrderSubsetInSameOrderOk) {
  // Member 1 missed a message; the common subsequence agrees, so no
  // inversion (the open final epoch may still be filling in).
  RunLog log = two_members(
      {cast(0, 0, 1), cast(1, 0, 1), cast(0, 1, 1)},
      {cast(0, 0, 1), cast(0, 1, 1)});
  EXPECT_TRUE(evaluate(only(Oracle::kTotalOrder), log).empty());
}

TEST(CheckOracle, CausalDominanceViolationCaught) {
  // Member 1 delivers m0's round-1 cast whose context says m0 had seen one
  // message from m1 -- but member 1 has not yet delivered any m1 message.
  RunLog log = two_members(
      {},
      {cast(0, 1, 1, {1, 1})});
  auto v = evaluate(only(Oracle::kCausal), log);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].oracle, Oracle::kCausal);
  EXPECT_EQ(v[0].member, 1u);
}

TEST(CheckOracle, CausalSatisfiedContextOk) {
  RunLog log = two_members(
      {},
      {cast(1, 0, 1, {0, 0}), cast(0, 1, 1, {0, 1})});
  EXPECT_TRUE(evaluate(only(Oracle::kCausal), log).empty());
}

TEST(CheckOracle, CausalOtherViewContextSkipped) {
  // Context tagged view 7, receiver is in view 1: cross-view contexts are
  // not comparable and must not fire.
  RunLog log = two_members({}, {cast(0, 1, 7, {99, 99})});
  EXPECT_TRUE(evaluate(only(Oracle::kCausal), log).empty());
}

TEST(CheckOracle, StabilityOverclaimCaught) {
  RunLog log = two_members({cast(0, 0, 1)}, {});
  Obs st;
  st.kind = Obs::Kind::kStable;
  st.stable_view_members = {1, 2};
  // Row 0 (member 0's own row) claims 3 deliveries from member 1, but
  // member 0 has delivered nothing from address 2.
  st.acked = {{1, 3}, {0, 0}};
  log.members[0].obs.push_back(std::move(st));
  auto v = evaluate(only(Oracle::kStability), log);
  ASSERT_GE(v.size(), 1u);
  EXPECT_EQ(v[0].oracle, Oracle::kStability);
}

TEST(CheckOracle, ViewAgreementDivergedFinalViewsCaught) {
  RunLog log = two_members({view(2, 1, {1})}, {view(2, 2, {2, 1})});
  auto v = evaluate(only(Oracle::kViewAgreement), log);
  EXPECT_FALSE(v.empty());
}

TEST(CheckOracle, ViewAgreementCrashedMemberExempt) {
  RunLog log = two_members({}, {});
  log.members[1].crashed = true;
  log.members[1].obs.clear();  // crashed early, saw nothing
  // Member 0's final view contains only itself: consistent with the set of
  // live members.
  log.members[0].obs.push_back(view(2, 1, {1}));
  EXPECT_TRUE(evaluate(only(Oracle::kViewAgreement), log).empty());
}

TEST(CheckOracle, CrossEpochCleanSwitchOk) {
  // Both members deliver everything, epochs step 0 -> 1 in unison: a
  // successful live switch has nothing to report, even on a clean run.
  Obs late_a = cast(1, 0, 1);
  late_a.epoch = 1;
  Obs late_b = cast(1, 0, 1);
  late_b.epoch = 1;
  RunLog log = two_members({cast(0, 0, 1), std::move(late_a)},
                           {cast(0, 0, 1), std::move(late_b)});
  log.sent = {1, 1};
  log.clean = true;
  EXPECT_TRUE(evaluate(only(Oracle::kCrossEpoch), log).empty());
}

TEST(CheckOracle, CrossEpochRegressionCaught) {
  Obs newer = cast(0, 0, 1);
  newer.epoch = 1;
  Obs older = cast(1, 0, 1);
  older.epoch = 0;  // the stack went back to a retired epoch
  RunLog log = two_members({std::move(newer), std::move(older)}, {});
  log.sent = {1, 1};
  auto v = evaluate(only(Oracle::kCrossEpoch), log);
  ASSERT_GE(v.size(), 1u);
  EXPECT_EQ(v[0].oracle, Oracle::kCrossEpoch);
  EXPECT_NE(v[0].detail.find("backwards"), std::string::npos);
}

TEST(CheckOracle, CrossEpochPerSenderReorderCaught) {
  // Member 1 delivers m0's round-1 cast before its round-0 cast: the
  // switch reordered (or re-delivered) the sender's stream.
  RunLog log = two_members({}, {cast(0, 1, 1), cast(0, 0, 1)});
  auto v = evaluate(only(Oracle::kCrossEpoch), log);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].member, 1u);
  EXPECT_NE(v[0].detail.find("reordered"), std::string::npos);
}

TEST(CheckOracle, CrossEpochFinalEpochDisagreementCaught) {
  Obs switched = cast(0, 0, 1);
  switched.epoch = 1;
  RunLog log = two_members({std::move(switched)}, {cast(0, 0, 1)});
  log.sent = {1, 0};
  auto v = evaluate(only(Oracle::kCrossEpoch), log);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].detail.find("final stack epoch"), std::string::npos);
}

TEST(CheckOracle, CrossEpochLossOnCleanRunCaught) {
  RunLog log = two_members({cast(0, 0, 1)}, {});
  log.sent = {1, 0};
  log.clean = true;  // no crash/partition in the plan: nothing may be lost
  auto v = evaluate(only(Oracle::kCrossEpoch), log);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].member, 1u);
  EXPECT_NE(v[0].detail.find("lost"), std::string::npos);
  // The same log under faults is inconclusive: a crashed sender's casts
  // may legitimately never arrive.
  log.clean = false;
  EXPECT_TRUE(evaluate(only(Oracle::kCrossEpoch), log).empty());
}

TEST(CheckOracle, LogHashCoversEpochs) {
  RunLog a = two_members({cast(0, 0, 1)}, {});
  RunLog b = two_members({cast(0, 0, 1)}, {});
  b.members[0].obs[1].epoch = 1;
  EXPECT_NE(log_hash(a), log_hash(b));
}

TEST(CheckOracle, LogHashIsOrderSensitive) {
  RunLog a = two_members({cast(0, 0, 1), cast(1, 0, 1)}, {});
  RunLog b = two_members({cast(1, 0, 1), cast(0, 0, 1)}, {});
  RunLog a2 = two_members({cast(0, 0, 1), cast(1, 0, 1)}, {});
  EXPECT_EQ(log_hash(a), log_hash(a2));
  EXPECT_NE(log_hash(a), log_hash(b));
}

TEST(CheckOracle, PayloadEncodeDecodeRoundTrip) {
  Payload p;
  p.sender = 3;
  p.round = 17;
  p.index = 2;
  p.view_seq = 9;
  p.ctx = {5, 0, 12, 7};
  auto back = Payload::decode(p.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sender, p.sender);
  EXPECT_EQ(back->round, p.round);
  EXPECT_EQ(back->index, p.index);
  EXPECT_EQ(back->view_seq, p.view_seq);
  EXPECT_EQ(back->ctx, p.ctx);
  // Garbage is rejected, not misparsed.
  Bytes junk = {1, 2, 3};
  EXPECT_FALSE(Payload::decode(junk).has_value());
}

}  // namespace
}  // namespace horus::check
