// End-to-end runner tests: scenarios execute deterministically (replaying
// a seed reproduces identical event and dispatch hashes), healthy stacks
// pass every auto-derived oracle, and each deliberately-broken layer
// variant is caught within a bounded seed budget.
#include "horus/check/runner.hpp"

#include <gtest/gtest.h>

#include "horus/check/explorer.hpp"
#include "horus/properties/property.hpp"

namespace horus::check {
namespace {

/// A scaled-down scenario so unit tests stay fast; the CLI smoke tests and
/// scripts/check_smoke.sh cover the full-size defaults.
Scenario small(const std::string& stack) {
  Scenario s;
  s.stack = stack;
  s.members = 3;
  s.rounds = 4;
  s.settle = 4 * sim::kSecond;
  return s;
}

TEST(CheckRunner, SameSeedIsBitIdentical) {
  Scenario s = small("MBRSHIP:FRAG:NAK:COM");
  RunResult a = run_scenario(s, 7);
  RunResult b = run_scenario(s, 7);
  EXPECT_EQ(a.event_hash, b.event_hash);
  EXPECT_EQ(a.dispatch_hash, b.dispatch_hash);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_TRUE(a.ok()) << a.violations.size() << " violations";
}

TEST(CheckRunner, DifferentSeedsDiverge) {
  Scenario s = small("MBRSHIP:FRAG:NAK:COM");
  RunResult a = run_scenario(s, 1);
  RunResult b = run_scenario(s, 2);
  EXPECT_NE(a.event_hash, b.event_hash);
}

TEST(CheckRunner, AutoOraclesFollowProvidedProperties) {
  using props::Property;
  OracleSet s = auto_oracles(props::make_set(
      {Property::kFifoMulticast, Property::kVirtualSync,
       Property::kTotalOrder}));
  EXPECT_EQ(s, static_cast<OracleSet>(Oracle::kNoDupNoCreation) |
                   static_cast<OracleSet>(Oracle::kVirtualSynchrony) |
                   static_cast<OracleSet>(Oracle::kTotalOrder));
  EXPECT_EQ(auto_oracles(0), kAutoOracles);
}

TEST(CheckRunner, CanonicalStacksPassManySeeds) {
  for (const char* stack :
       {"TOTAL:STABLE:MBRSHIP:FRAG:NAK:COM", "CAUSAL:MBRSHIP:FRAG:NAK:COM"}) {
    Scenario s = small(stack);
    ExploreOptions o;
    o.num_seeds = 25;
    o.shrink_failures = false;
    ExploreResult r = explore(s, o);
    EXPECT_TRUE(r.ok()) << stack << " failed at seed "
                        << (r.first_failing_seed ? *r.first_failing_seed : 0);
  }
}

TEST(CheckRunner, PartitionScenarioPasses) {
  Scenario s = small("MBRSHIP:FRAG:NAK:COM");
  s.partitions = 1;
  s.crashes = 0;
  s.members = 4;
  ExploreOptions o;
  o.num_seeds = 5;
  o.shrink_failures = false;
  ExploreResult r = explore(s, o);
  EXPECT_TRUE(r.ok()) << "failed at seed "
                      << (r.first_failing_seed ? *r.first_failing_seed : 0);
}

/// Every broken variant must be caught within this seed budget (the
/// artifact-level guarantee docs/check.md promises).
constexpr std::uint64_t kDetectionBudget = 20;

struct BrokenCase {
  const char* stack;
  Oracle expected;
};

class CheckRunnerBroken : public ::testing::TestWithParam<BrokenCase> {};

TEST_P(CheckRunnerBroken, CaughtWithinBudget) {
  Scenario s = small(GetParam().stack);
  ExploreOptions o;
  o.num_seeds = kDetectionBudget;
  o.shrink_failures = false;
  ExploreResult r = explore(s, o);
  ASSERT_FALSE(r.ok()) << GetParam().stack
                       << " survived the detection budget";
  bool expected_fired = false;
  for (const Violation& v : r.first_violations) {
    if (v.oracle == GetParam().expected) expected_fired = true;
  }
  EXPECT_TRUE(expected_fired)
      << GetParam().stack << ": expected oracle "
      << oracle_name(GetParam().expected) << " among "
      << r.first_violations.size() << " violations, first: "
      << r.first_violations[0].to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CheckRunnerBroken,
    ::testing::Values(
        BrokenCase{"TOTAL!:STABLE:MBRSHIP:FRAG:NAK:COM", Oracle::kTotalOrder},
        BrokenCase{"CAUSAL!:MBRSHIP:FRAG:NAK:COM", Oracle::kCausal},
        BrokenCase{"MBRSHIP:FRAG:NAK!:COM", Oracle::kNoDupNoCreation},
        BrokenCase{"MBRSHIP!:FRAG:NAK:COM", Oracle::kViewAgreement}));

TEST(CheckRunner, LiveSwitchScenarioPassesAndBumpsEpoch) {
  Scenario s = small("TOTAL:MBRSHIP:FRAG:NAK:COM");
  s.switch_spec = "TOTAL:MBRSHIP:FRAG:MCAST:NNAK:COM";
  s.crashes = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    RunOptions o;
    o.keep_log = true;
    RunResult r = run_scenario(s, seed, o);
    // The switch oracle is forced on whenever the plan carries a switch.
    EXPECT_NE(r.oracles & static_cast<OracleSet>(Oracle::kCrossEpoch), 0u);
    EXPECT_TRUE(r.ok()) << "seed " << seed << ", first: "
                        << (r.violations.empty()
                                ? ""
                                : r.violations[0].to_string());
    // Every member actually crossed into epoch 1 -- the switch really ran,
    // it was not silently rejected.
    for (const RunLog::Member& m : r.log.members) {
      std::uint32_t max_epoch = 0;
      for (const Obs& ob : m.obs) max_epoch = std::max(max_epoch, ob.epoch);
      EXPECT_EQ(max_epoch, 1u)
          << "seed " << seed << " member " << m.index;
    }
  }
}

TEST(CheckRunner, LiveSwitchReplaysBitIdentically) {
  Scenario s = small("TOTAL:MBRSHIP:FRAG:NAK:COM");
  s.switch_spec = "TOTAL:MBRSHIP:FRAG:NAK:COMPRESS:COM";
  s.crashes = 0;
  RunResult a = run_scenario(s, 9);
  RunResult b = run_scenario(s, 9);
  EXPECT_EQ(a.event_hash, b.event_hash);
  EXPECT_EQ(a.dispatch_hash, b.dispatch_hash);
  EXPECT_TRUE(a.ok());
}

TEST(CheckRunner, ExplicitOraclesOverrideAuto) {
  Scenario s = small("MBRSHIP:FRAG:NAK:COM");
  s.oracles = parse_oracles("view-agreement");
  RunResult r = run_scenario(s, 3);
  EXPECT_EQ(r.oracles, parse_oracles("view-agreement"));
}

TEST(CheckRunner, MaskedRunKeepsDecisionAlignment) {
  // Masking a fault decision must not shift any other decision: the run
  // differs only by that fault not happening (the shrinker's soundness
  // assumption).
  Scenario s = small("MBRSHIP:FRAG:NAK:COM");
  RunOptions rec;
  rec.record = true;
  RunResult full = run_scenario(s, 11, rec);
  ASSERT_FALSE(full.faulty.empty()) << "scenario injected no faults";

  RunOptions masked;
  masked.plan = full.plan;
  masked.record = true;
  masked.mask = {full.faulty.front()};
  RunResult r = run_scenario(s, 11, masked);
  for (std::uint64_t idx : r.faulty) {
    EXPECT_NE(idx, full.faulty.front()) << "masked fault still fired";
  }
}

}  // namespace
}  // namespace horus::check
