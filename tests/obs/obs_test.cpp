// horus-obs: the metrics registry (counters, gauges, log2 histograms,
// poll adapters, snapshot/Prometheus export) and the per-group flight
// recorder, plus an end-to-end check that the stack probes actually feed
// them when a cast traverses a full stack.
#include <string>

#include "../common/test_util.hpp"
#include "horus/obs/flight_recorder.hpp"
#include "horus/obs/metrics.hpp"

namespace horus::testing {
namespace {

// -- Histogram bucketing ----------------------------------------------------

TEST(ObsHistogram, BucketEdges) {
  // Bucket b holds values of bit width b: 0 -> 0, [2^(b-1), 2^b) -> b.
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(~0ULL), 64u);
  EXPECT_EQ(obs::Histogram::bucket_limit(0), 1u);
  EXPECT_EQ(obs::Histogram::bucket_limit(1), 2u);
  EXPECT_EQ(obs::Histogram::bucket_limit(10), 1024u);
  EXPECT_EQ(obs::Histogram::bucket_limit(64), ~0ULL);
}

TEST(ObsHistogram, RecordAccumulatesCountSumBuckets) {
  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(3);
  h.record(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1004u);
  EXPECT_EQ(h.bucket(0), 1u);   // the 0
  EXPECT_EQ(h.bucket(1), 1u);   // the 1
  EXPECT_EQ(h.bucket(2), 1u);   // the 3
  EXPECT_EQ(h.bucket(10), 1u);  // 1000 in [512, 1024)
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(10), 0u);
}

// -- Registry ---------------------------------------------------------------

TEST(ObsRegistry, GetOrCreateReturnsStableAddresses) {
  obs::MetricsRegistry reg;
  obs::Counter& c1 = reg.counter("a.b");
  obs::Counter& c2 = reg.counter("a.b");
  EXPECT_EQ(&c1, &c2);  // same name, same instrument
  c1.add(3);
  EXPECT_EQ(c2.value(), 3u);
  // Creating more instruments must not move existing ones (hot paths
  // cache the pointer).
  for (int i = 0; i < 100; ++i) reg.counter("fill." + std::to_string(i));
  EXPECT_EQ(&reg.counter("a.b"), &c1);
}

TEST(ObsRegistry, SnapshotIsNameSortedAndFindable) {
  obs::MetricsRegistry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.gauge("mid").set(-7);
  obs::Snapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].name, "a.first");
  EXPECT_EQ(s.counters[1].name, "z.last");
  const obs::Snapshot::Sample* c = s.find_counter("a.first");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 2);
  EXPECT_EQ(s.find_counter("nope"), nullptr);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].value, -7);
}

TEST(ObsRegistry, QuantileBoundTracksDistribution) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat");
  for (int i = 0; i < 99; ++i) h.record(1);
  h.record(100);
  obs::Snapshot s = reg.snapshot();
  const obs::Snapshot::Hist* sh = s.find_histogram("lat");
  ASSERT_NE(sh, nullptr);
  EXPECT_EQ(sh->count, 100u);
  // Half the samples fall below 2 (value 1 lives in bucket 1 = [1,2))...
  EXPECT_EQ(sh->quantile_bound(0.5), 2u);
  // ...and the max lands in bucket 7 = [64,128).
  EXPECT_EQ(sh->quantile_bound(1.0), 128u);
}

TEST(ObsRegistry, PollAdaptersMirrorAndUnregister) {
  obs::MetricsRegistry reg;
  std::uint64_t island = 41;
  int owner = 0;  // any address works as an owner token
  reg.poll_counter("island.events", &owner, [&island] { return island; });
  island = 42;
  obs::Snapshot s = reg.snapshot();
  const obs::Snapshot::Sample* c = s.find_counter("island.events");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 42);  // read at snapshot time, not registration time
  reg.remove_polls(&owner);
  EXPECT_EQ(reg.snapshot().find_counter("island.events"), nullptr);
}

TEST(ObsRegistry, ResetZeroesOwnedInstruments) {
  obs::MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(5);
  reg.histogram("h").record(5);
  reg.reset();
  obs::Snapshot s = reg.snapshot();
  EXPECT_EQ(s.find_counter("c")->value, 0);
  EXPECT_EQ(s.gauges[0].value, 0);
  EXPECT_EQ(s.find_histogram("h")->count, 0u);
}

TEST(ObsRegistry, PrometheusExposition) {
  obs::MetricsRegistry reg;
  reg.counter("stack.forward_down").add(7);
  reg.gauge("exec.queue_delay_ns").set(9);
  obs::Histogram& h = reg.histogram("layer.down_ns.NAK");
  h.record(3);
  h.record(3);
  std::string out = reg.prometheus();
  // Dots sanitize to underscores under a horus_ prefix.
  EXPECT_NE(out.find("# TYPE horus_stack_forward_down counter\n"
                     "horus_stack_forward_down 7\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("# TYPE horus_exec_queue_delay_ns gauge\n"
                     "horus_exec_queue_delay_ns 9\n"),
            std::string::npos)
      << out;
  // Histogram: cumulative le-labelled buckets; both 3s are in [2,4), so
  // the le="4" line carries the full count, as do _sum/_count.
  EXPECT_NE(out.find("# TYPE horus_layer_down_ns_NAK histogram\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("horus_layer_down_ns_NAK_bucket{le=\"4\"} 2\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("horus_layer_down_ns_NAK_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("horus_layer_down_ns_NAK_sum 6\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("horus_layer_down_ns_NAK_count 2\n"), std::string::npos)
      << out;
}

TEST(ObsRegistry, ProcessRegistryMirrorsMsgPathAndRaceIslands) {
  obs::Snapshot s = obs::metrics().snapshot();
  // The process-wide islands are registered on first use, whatever their
  // current values.
  EXPECT_NE(s.find_counter("msgpath.pool_hits"), nullptr);
  EXPECT_NE(s.find_counter("race.cross_group"), nullptr);
}

// -- Queue-delay probe ------------------------------------------------------

TEST(ObsProbe, WrappedTaskStillRunsWhetherSampledOrNot) {
  int runs = 0;
  // Drive past the 1/64 sample period so both branches are exercised.
  for (int i = 0; i < 80; ++i) {
    auto t = obs::wrap_queue_delay_probe([&runs] { ++runs; });
    t();
  }
  EXPECT_EQ(runs, 80);
  obs::set_enabled(false);
  auto t = obs::wrap_queue_delay_probe([&runs] { ++runs; });
  t();
  obs::set_enabled(true);
  EXPECT_EQ(runs, 81);
}

// -- Flight recorder --------------------------------------------------------

TEST(ObsFlight, RingOverflowKeepsLastWindow) {
  obs::GroupRing ring;
  const int kEvents = 300;  // > kEntries = 256
  for (int i = 0; i < kEvents; ++i) {
    ring.record(obs::FrEvent::kForwardDown, 2,
                static_cast<std::uint32_t>(i), /*vtime=*/i * 10, /*src=*/7);
  }
  EXPECT_EQ(ring.recorded(), static_cast<std::uint64_t>(kEvents));
  // Sequence 299 survives; its slot holds the packed fields.
  const obs::GroupRing::Entry& e = ring.entry(kEvents - 1);
  const std::uint64_t meta = e.meta.load();
  EXPECT_EQ(meta & 0xFF, static_cast<std::uint64_t>(obs::FrEvent::kForwardDown));
  EXPECT_EQ((meta >> 8) & 0xFF, 2u);
  EXPECT_EQ(meta >> 32, 299u);
  EXPECT_EQ(e.vtime.load(), 2990u);
  EXPECT_EQ(e.src.load(), 7u);
  // Sequence 43 was lapped by 299 (43 + 256): same slot, newer event.
  EXPECT_EQ(ring.entry(43).meta.load() >> 32, 299u);
  // Per-event-type counts are exact lifetime totals...
  EXPECT_EQ(ring.count_of(obs::FrEvent::kForwardDown),
            static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(ring.count_of(obs::FrEvent::kForwardUp), 0u);
  ring.reset();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.entry(0).meta.load(), 0u);
  // ...and deliberately survive a window reset: the registry's
  // stack.forward_* mirrors must stay monotonic across horus-check's
  // per-scenario resets.
  EXPECT_EQ(ring.count_of(obs::FrEvent::kForwardDown),
            static_cast<std::uint64_t>(kEvents));
}

TEST(ObsFlight, DumpNamesLayersAndCapsWindow) {
  obs::FlightRecorder fr;
  EXPECT_EQ(fr.dump(5), "");  // unknown group
  obs::GroupRing* ring = fr.ring(5);
  ASSERT_NE(ring, nullptr);
  EXPECT_EQ(fr.ring(5), ring);  // stable get-or-create
  EXPECT_EQ(fr.dump(5), "");    // known but empty
  fr.set_layers(5, "TOTAL:NAK:COM");
  ring->record(obs::FrEvent::kDowncall, 0, 11, 100, 1);
  ring->record(obs::FrEvent::kForwardDown, 1, 11, 100, 1);
  ring->record(obs::FrEvent::kAppDeliver, obs::kFrNoLayer, 11, 150, 2);
  std::string d = fr.dump(5);
  EXPECT_NE(d.find("FLIGHT group=5 events=3 window=3 rt~="), std::string::npos)
      << d;
  EXPECT_NE(d.find("DOWNCALL layer=TOTAL size=11"), std::string::npos) << d;
  EXPECT_NE(d.find("DOWN layer=NAK size=11"), std::string::npos) << d;
  // kFrNoLayer renders as "-" (application edge).
  EXPECT_NE(d.find("DELIVER layer=- size=11"), std::string::npos) << d;
  EXPECT_NE(d.find("vt=100"), std::string::npos) << d;
  std::string all = fr.dump_all();
  EXPECT_NE(all.find("FLIGHT group=5"), std::string::npos) << all;
  fr.reset();
  EXPECT_EQ(fr.dump(5), "");
}

#ifdef HORUS_METRICS
// -- End to end: stack probes feed the registry and the recorder ------------

TEST(ObsIntegration, CastThroughStackFeedsMetricsAndFlightRecorder) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  obs::Snapshot before = obs::metrics().snapshot();
  World w(2, "TRACE:MBRSHIP:FRAG:NAK:COM", o);
  w.form_group();
  for (int i = 0; i < 20; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("probe me"));
  }
  w.sys.run_for(sim::kSecond);
  obs::Snapshot after = obs::metrics().snapshot();
  auto counter_delta = [&](const std::string& name) {
    const obs::Snapshot::Sample* a = after.find_counter(name);
    const obs::Snapshot::Sample* b = before.find_counter(name);
    return (a ? a->value : 0) - (b ? b->value : 0);
  };
  // The registry is process-global, so assert deltas, not absolutes.
  EXPECT_GT(counter_delta("stack.forward_down"), 0);
  EXPECT_GT(counter_delta("stack.forward_up"), 0);
  // Sampled per-layer latency histograms exist for this spec's layers.
  EXPECT_NE(after.find_histogram("layer.down_ns.NAK"), nullptr);
  EXPECT_NE(after.find_histogram("layer.up_ns.TRACE"), nullptr);
  // The flight recorder saw the group's traffic, and the FLIGHT dump
  // downcall exposes it with layer names resolved.
  obs::GroupRing* ring = obs::flight_recorder().ring(kGroup.id);
  EXPECT_GT(ring->recorded(), 0u);
  std::string d = w.eps[1]->dump(kGroup, "FLIGHT");
  EXPECT_NE(d.find("FLIGHT group=" + std::to_string(kGroup.id)),
            std::string::npos)
      << d;
  EXPECT_NE(d.find("layer=COM"), std::string::npos) << d;
}

TEST(ObsIntegration, DisabledSwitchStopsCounting) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  obs::set_enabled(false);
  obs::Snapshot before = obs::metrics().snapshot();
  {
    World w(2, "MBRSHIP:FRAG:NAK:COM", o);
    w.form_group();
    w.eps[0]->cast(kGroup, Message::from_string("dark"));
    w.sys.run_for(sim::kSecond);
  }
  obs::Snapshot after = obs::metrics().snapshot();
  obs::set_enabled(true);
  const obs::Snapshot::Sample* a = after.find_counter("stack.forward_down");
  const obs::Snapshot::Sample* b = before.find_counter("stack.forward_down");
  EXPECT_EQ(a ? a->value : 0, b ? b->value : 0);
}
#endif  // HORUS_METRICS

}  // namespace
}  // namespace horus::testing
