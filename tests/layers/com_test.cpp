// COM layer behaviour: fan-out to the view, source tagging, group
// demultiplexing, checksum trailer (P10), spurious-traffic filtering.
#include "../common/test_util.hpp"
#include "horus/util/hotpath_stats.hpp"

namespace horus::testing {
namespace {

HorusSystem::Options quiet() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  return o;
}

struct ComWorld : World {
  ComWorld(std::size_t n, const std::string& spec = "COM",
           HorusSystem::Options o = quiet())
      : World(n, spec, o) {
    std::vector<Address> members;
    members.reserve(n);
    for (auto* ep : eps) members.push_back(ep->address());
    for (auto* ep : eps) {
      ep->join(kGroup);
      ep->install_view(kGroup, members);
    }
    sys.run_for(10 * sim::kMillisecond);
  }
};

TEST(Com, CastFansOutToWholeView) {
  ComWorld w(4);
  w.eps[0]->cast(kGroup, Message::from_string("all"));
  w.sys.run_for(50 * sim::kMillisecond);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(w.logs[i].casts.size(), 1u) << "member " << i;
  }
  // One datagram per member (including self-delivery).
  EXPECT_EQ(w.eps[0]->stack().stats().datagrams_sent, 4u);
}

TEST(Com, SendGoesOnlyToSubset) {
  ComWorld w(4);
  w.eps[0]->send(kGroup, {w.eps[2]->address()}, Message::from_string("pssst"));
  w.sys.run_for(50 * sim::kMillisecond);
  EXPECT_TRUE(w.logs[1].sends.empty());
  EXPECT_TRUE(w.logs[3].sends.empty());
  ASSERT_EQ(w.logs[2].sends.size(), 1u);
  EXPECT_EQ(w.logs[2].sends[0].payload, "pssst");
  EXPECT_EQ(w.logs[2].sends[0].source, w.eps[0]->address());
}

TEST(Com, SourceAddressPushed) {
  ComWorld w(2);
  w.eps[1]->cast(kGroup, Message::from_string("x"));
  w.sys.run_for(50 * sim::kMillisecond);
  ASSERT_EQ(w.logs[0].casts.size(), 1u);
  EXPECT_EQ(w.logs[0].casts[0].source, w.eps[1]->address());
}

TEST(Com, UnknownGroupDropped) {
  ComWorld w(2);
  // Member 1 leaves the group table entirely: traffic for the group is
  // dropped at its COM (no crash, no upcall).
  w.eps[1]->destroy();
  w.eps[0]->cast(kGroup, Message::from_string("gone"));
  w.sys.run_for(50 * sim::kMillisecond);
  EXPECT_TRUE(w.logs[1].casts.empty());
}

TEST(Com, ChecksumDropsGarbledDatagrams) {
  HorusSystem::Options o = quiet();
  o.net.corrupt = 1.0;  // every datagram garbled in transit
  ComWorld w(2, "COM", o);
  for (int i = 0; i < 20; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("junked"));
  }
  w.sys.run_for(sim::kSecond);
  EXPECT_TRUE(w.logs[1].casts.empty())
      << "corrupted datagrams must never be delivered through COM (P10)";
}

TEST(Com, RawComDeliversGarbledDatagrams) {
  // RAWCOM has no checksum: corruption flows through (it provides only
  // P11). Payload-only corruption keeps the header parseable often enough
  // to observe deliveries.
  HorusSystem::Options o = quiet();
  o.net.corrupt = 0.5;
  ComWorld w(2, "RAWCOM", o);
  int garbled = 0;
  for (int i = 0; i < 200; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("AAAAAAAAAAAAAAAAAAAAAAAA"));
  }
  w.sys.run_for(sim::kSecond);
  for (const auto& d : w.logs[1].casts) {
    if (d.payload != "AAAAAAAAAAAAAAAAAAAAAAAA") ++garbled;
  }
  EXPECT_GT(garbled, 0) << "RAWCOM should have let some corruption through";
}

TEST(Com, ViewUpdateChangesFanOut) {
  ComWorld w(3);
  // Shrink the view at the sender: subsequent casts skip the removed member.
  w.eps[0]->install_view(kGroup, {w.eps[0]->address(), w.eps[1]->address()});
  w.sys.run_for(10 * sim::kMillisecond);
  w.eps[0]->cast(kGroup, Message::from_string("smaller"));
  w.sys.run_for(50 * sim::kMillisecond);
  EXPECT_EQ(w.logs[1].casts.size(), 1u);
  EXPECT_TRUE(w.logs[2].casts.empty());
}

TEST(Com, EmptyPayloadCast) {
  ComWorld w(2);
  w.eps[0]->cast(kGroup, Message());
  w.sys.run_for(50 * sim::kMillisecond);
  ASSERT_EQ(w.logs[1].casts.size(), 1u);
  EXPECT_TRUE(w.logs[1].casts[0].payload.empty());
}

TEST(Com, CastUsesOneBatchedTransportSend) {
  // COM's fan-out goes through Transport::send_batch: one egress call per
  // cast (and one SimNetwork::send_multi burst), not one per member.
  ComWorld w(4);
  msg_path_stats().reset();
  w.eps[0]->cast(kGroup, Message::from_string("batched"));
  w.sys.run_for(50 * sim::kMillisecond);
  EXPECT_EQ(msg_path_stats().batch_sends.load(), 1u);
  EXPECT_EQ(w.eps[0]->stack().stats().datagrams_sent, 4u)
      << "batching must not change per-destination accounting";
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(w.logs[i].casts.size(), 1u) << "member " << i;
  }
}

TEST(Com, SelfSendWorks) {
  ComWorld w(2);
  w.eps[0]->send(kGroup, {w.eps[0]->address()}, Message::from_string("loop"));
  w.sys.run_for(50 * sim::kMillisecond);
  ASSERT_EQ(w.logs[0].sends.size(), 1u);
  EXPECT_EQ(w.logs[0].sends[0].payload, "loop");
}

}  // namespace
}  // namespace horus::testing
