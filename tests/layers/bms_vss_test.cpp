// The BMS/VSS decomposition of membership (Table 3): BMS alone gives
// agreed views but only semi-synchrony; VSS:BMS reconstructs full virtual
// synchrony -- equivalent guarantees to the monolithic MBRSHIP.
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

HorusSystem::Options quiet() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  return o;
}

TEST(Bms, GroupFormsAndCasts) {
  World w(3, "BMS:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.eps[1]->cast(kGroup, Message::from_string("semi"));
  w.sys.run_for(sim::kSecond);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(w.logs[i].casts_from(w.eps[1]->address()).size(), 1u)
        << "member " << i;
  }
}

TEST(Bms, CrashShrinksView) {
  World w(4, "BMS:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.sys.crash(*w.eps[3]);
  w.sys.run_for(3 * sim::kSecond);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(w.logs[i].views.back().size(), 3u) << "member " << i;
  }
}

TEST(Bms, ProvidesOnlySemiSynchrony) {
  // The property algebra knows BMS is weaker: TOTAL (requires P9) cannot
  // stack on BMS alone, but can on VSS:BMS.
  HorusSystem sys(quiet());
  EXPECT_THROW(sys.create_endpoint("TOTAL:BMS:FRAG:NAK:COM"),
               std::invalid_argument);
  EXPECT_NO_THROW(sys.create_endpoint("TOTAL:VSS:BMS:FRAG:NAK:COM"));
}

TEST(Vss, GroupFormsAndCasts) {
  World w(3, "VSS:BMS:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  for (std::size_t m = 0; m < 3; ++m) {
    w.eps[m]->cast(kGroup, Message::from_string("vs" + std::to_string(m)));
  }
  w.sys.run_for(2 * sim::kSecond);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(w.logs[i].casts.size(), 3u) << "member " << i;
  }
}

TEST(Vss, Figure2ScenarioHolds) {
  // The same unstable-message obligation MBRSHIP satisfies, now via the
  // decomposed pair: D crashes after sending M; only C received it; every
  // survivor must deliver M before the view change reaches the app.
  World w(4, "VSS:BMS:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  Endpoint* D = w.eps[3];
  sim::LinkParams dead;
  dead.loss = 1.0;
  w.sys.net().set_link_params(D->address().id, w.eps[0]->address().id, dead);
  w.sys.net().set_link_params(D->address().id, w.eps[1]->address().id, dead);
  D->cast(kGroup, Message::from_string("M"));
  w.sys.run_for(1 * sim::kMillisecond);
  w.sys.crash(*D);
  w.sys.run_for(5 * sim::kSecond);
  for (int i : {0, 1, 2}) {
    auto got = w.logs[i].casts_from(D->address());
    ASSERT_EQ(got.size(), 1u) << "member " << i << " missed/duped M";
    EXPECT_EQ(got[0], "M");
    EXPECT_EQ(w.logs[i].views.back().size(), 3u) << "member " << i;
  }
}

TEST(Vss, ViewDeliveredAfterReconciliation) {
  // Interleaving check at one member: M strictly before the shrunk view.
  World w(3, "VSS:BMS:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  std::vector<std::string> events;
  w.eps[1]->on_upcall([&](Group&, UpEvent& ev) {
    if (ev.type == UpType::kCast) events.push_back("cast");
    if (ev.type == UpType::kView) events.push_back("view" + std::to_string(ev.view.size()));
  });
  Endpoint* crasher = w.eps[2];
  sim::LinkParams dead;
  dead.loss = 1.0;
  w.sys.net().set_link_params(crasher->address().id, w.eps[1]->address().id, dead);
  crasher->cast(kGroup, Message::from_string("last words"));
  w.sys.run_for(1 * sim::kMillisecond);
  w.sys.crash(*crasher);
  w.sys.run_for(5 * sim::kSecond);
  auto cast_it = std::find(events.begin(), events.end(), "cast");
  auto view_it = std::find(events.begin(), events.end(), "view2");
  ASSERT_NE(cast_it, events.end());
  ASSERT_NE(view_it, events.end());
  EXPECT_LT(cast_it - events.begin(), view_it - events.begin());
}

TEST(Vss, SameMessageSetsAcrossViewChange) {
  HorusSystem::Options o;
  o.net.loss = 0.05;
  o.seed = 321;
  World w(4, "VSS:BMS:FRAG:NAK:COM", o);
  w.form_group(3 * sim::kSecond);
  ASSERT_TRUE(w.converged());
  for (int round = 0; round < 6; ++round) {
    for (std::size_t m = 0; m < 4; ++m) {
      if (round >= 3 && m == 3) continue;  // crashed below
      w.eps[m]->cast(kGroup, Message::from_string(
                                 "r" + std::to_string(round) + "m" + std::to_string(m)));
    }
    if (round == 2) w.sys.crash(*w.eps[3]);
    w.sys.run_for(200 * sim::kMillisecond);
  }
  w.sys.run_for(8 * sim::kSecond);
  // All survivors delivered the same SET of messages.
  auto set_of = [](const AppLog& log) {
    std::set<std::string> s;
    for (const auto& d : log.casts) s.insert(d.payload);
    return s;
  };
  auto ref = set_of(w.logs[0]);
  for (std::size_t m : {1u, 2u}) {
    EXPECT_EQ(set_of(w.logs[m]), ref) << "member " << m;
  }
}

TEST(Vss, CoordinatorCrashDuringExchangeRecovers) {
  // The exchange coordinator (oldest survivor) dies mid-reconciliation:
  // BMS announces yet another view and the exchange restarts toward it.
  World w(4, "VSS:BMS:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.eps[0]->cast(kGroup, Message::from_string("pre"));
  w.sys.run_for(sim::kSecond);
  // Crash member 3 to trigger an exchange, and the exchange coordinator
  // (member 0) shortly after.
  w.sys.crash(*w.eps[3]);
  w.sys.run_for(300 * sim::kMillisecond);  // suspicion fires, exchange begins
  w.sys.crash(*w.eps[0]);
  w.sys.run_for(8 * sim::kSecond);
  for (std::size_t i : {1u, 2u}) {
    ASSERT_FALSE(w.logs[i].views.empty()) << "member " << i;
    EXPECT_EQ(w.logs[i].views.back().size(), 2u) << "member " << i;
  }
  EXPECT_EQ(w.logs[1].views.back(), w.logs[2].views.back());
  // Still live.
  std::size_t before = w.logs[2].casts.size();
  w.eps[1]->cast(kGroup, Message::from_string("post"));
  w.sys.run_for(2 * sim::kSecond);
  EXPECT_GT(w.logs[2].casts.size(), before);
}

TEST(Vss, TotalOrderOverDecomposedMembership) {
  // The full LEGO payoff: TOTAL runs unchanged over VSS:BMS.
  World w(3, "TOTAL:VSS:BMS:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  for (int i = 0; i < 9; ++i) {
    w.eps[static_cast<std::size_t>(i % 3)]->cast(
        kGroup, Message::from_string("t" + std::to_string(i)));
  }
  w.sys.run_for(5 * sim::kSecond);
  auto ref = w.logs[0].all_cast_payloads();
  ASSERT_EQ(ref.size(), 9u);
  for (std::size_t m = 1; m < 3; ++m) {
    EXPECT_EQ(w.logs[m].all_cast_payloads(), ref) << "member " << m;
  }
}

}  // namespace
}  // namespace horus::testing
