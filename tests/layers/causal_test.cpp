// CAUSAL layer: delivery respects happens-before; concurrent messages may
// interleave differently at different members, but causality never breaks.
#include <map>

#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

constexpr const char* kStack = "CAUSAL:MBRSHIP:FRAG:NAK:COM";

// Track, at each member, the position of each delivered payload.
std::map<std::string, std::size_t> positions(const AppLog& log) {
  std::map<std::string, std::size_t> pos;
  for (std::size_t i = 0; i < log.casts.size(); ++i) {
    pos[log.casts[i].payload] = i;
  }
  return pos;
}

TEST(Causal, ReplyNeverBeforeQuestion) {
  // The classic test: B replies to A's message. With wide network jitter
  // the raw datagrams frequently reorder; CAUSAL must still deliver
  // "question" before "answer" everywhere.
  HorusSystem::Options o;
  o.net.loss = 0.0;
  o.net.delay_min = 50;
  o.net.delay_max = 3000;  // aggressive reorder window
  World w(3, kStack, o);
  w.form_group(3 * sim::kSecond);
  ASSERT_TRUE(w.converged());
  for (int round = 0; round < 20; ++round) {
    w.eps[0]->cast(kGroup, Message::from_string("q" + std::to_string(round)));
    // B "replies" as soon as it sees the question.
    w.sys.run_for(sim::kSecond);
    ASSERT_FALSE(w.logs[1].casts.empty());
    w.eps[1]->cast(kGroup, Message::from_string("a" + std::to_string(round)));
    w.sys.run_for(sim::kSecond);
  }
  w.sys.run_for(5 * sim::kSecond);
  for (std::size_t m = 0; m < 3; ++m) {
    auto pos = positions(w.logs[m]);
    for (int round = 0; round < 20; ++round) {
      std::string q = "q" + std::to_string(round);
      std::string a = "a" + std::to_string(round);
      ASSERT_TRUE(pos.contains(q)) << "member " << m << " missing " << q;
      ASSERT_TRUE(pos.contains(a)) << "member " << m << " missing " << a;
      EXPECT_LT(pos[q], pos[a])
          << "member " << m << ": answer before question in round " << round;
    }
  }
}

TEST(Causal, ChainAcrossThreeMembers) {
  // A -> B -> C causal chain: C's message depends on B's which depends on
  // A's; every member must deliver them in chain order.
  HorusSystem::Options o;
  o.net.delay_min = 50;
  o.net.delay_max = 2000;
  World w(3, kStack, o);
  w.form_group(3 * sim::kSecond);
  ASSERT_TRUE(w.converged());
  w.eps[0]->cast(kGroup, Message::from_string("link0"));
  w.sys.run_for(sim::kSecond);
  w.eps[1]->cast(kGroup, Message::from_string("link1"));
  w.sys.run_for(sim::kSecond);
  w.eps[2]->cast(kGroup, Message::from_string("link2"));
  w.sys.run_for(3 * sim::kSecond);
  for (std::size_t m = 0; m < 3; ++m) {
    auto pos = positions(w.logs[m]);
    EXPECT_LT(pos.at("link0"), pos.at("link1")) << "member " << m;
    EXPECT_LT(pos.at("link1"), pos.at("link2")) << "member " << m;
  }
}

TEST(Causal, FifoIsSubsumed) {
  HorusSystem::Options o;
  o.net.delay_min = 10;
  o.net.delay_max = 1500;
  World w(2, kStack, o);
  w.form_group(3 * sim::kSecond);
  for (int i = 0; i < 30; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string(std::to_string(i)));
  }
  w.sys.run_for(10 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], std::to_string(i));
  }
}

TEST(Causal, ConcurrentMessagesAllDelivered) {
  HorusSystem::Options o;
  o.net.loss = 0.1;
  World w(4, kStack, o);
  w.form_group(3 * sim::kSecond);
  ASSERT_TRUE(w.converged());
  for (std::size_t m = 0; m < 4; ++m) {
    for (int i = 0; i < 10; ++i) {
      w.eps[m]->cast(kGroup, Message::from_string("c" + std::to_string(m) +
                                                  "." + std::to_string(i)));
    }
  }
  w.sys.run_for(10 * sim::kSecond);
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_EQ(w.logs[m].casts.size(), 40u) << "member " << m;
  }
}

TEST(Causal, SurvivesCrash) {
  HorusSystem::Options o;
  o.net.loss = 0.05;
  World w(4, kStack, o);
  w.form_group(3 * sim::kSecond);
  ASSERT_TRUE(w.converged());
  w.eps[0]->cast(kGroup, Message::from_string("before"));
  w.sys.run_for(100 * sim::kMillisecond);
  w.sys.crash(*w.eps[3]);
  w.sys.run_for(5 * sim::kSecond);
  w.eps[1]->cast(kGroup, Message::from_string("after"));
  w.sys.run_for(5 * sim::kSecond);
  for (std::size_t m = 0; m < 3; ++m) {
    auto pos = positions(w.logs[m]);
    ASSERT_TRUE(pos.contains("before")) << "member " << m;
    ASSERT_TRUE(pos.contains("after")) << "member " << m;
    EXPECT_LT(pos["before"], pos["after"]) << "member " << m;
  }
}

}  // namespace
}  // namespace horus::testing
