// LOG / TRACE / ACCOUNT: the observability protocol types of Figure 1's
// table, including LOG's headline capability -- recovering a group's
// delivered history after a TOTAL crash (every member gone).
#include <atomic>
#include <thread>

#include "../common/test_util.hpp"
#include "horus/layers/observe.hpp"

namespace horus::testing {
namespace {

HorusSystem::Options quiet() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  return o;
}

TEST(LogLayer, JournalsDeliveredCasts) {
  auto store = std::make_shared<layers::LogStore>();
  HorusSystem::Options o = quiet();
  o.stack.log_store_erased = store;
  World w(2, "LOG:MBRSHIP:FRAG:NAK:COM", o);
  w.form_group();
  ASSERT_TRUE(w.converged());
  for (int i = 0; i < 5; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("j" + std::to_string(i)));
  }
  w.sys.run_for(sim::kSecond);
  const auto& journal = store->journal(w.eps[1]->address(), kGroup);
  ASSERT_EQ(journal.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(to_string(journal[static_cast<std::size_t>(i)].payload),
              "j" + std::to_string(i));
    EXPECT_EQ(journal[static_cast<std::size_t>(i)].source, w.eps[0]->address());
  }
}

TEST(LogLayer, TotalCrashRecovery) {
  // "logging -- tolerance of total crash failures": every member dies;
  // a new generation recovers the application history from the store.
  auto store = std::make_shared<layers::LogStore>();
  HorusSystem::Options o = quiet();
  o.stack.log_store_erased = store;
  HorusSystem sys(o);
  Address addr_a, addr_b;
  {
    auto& a = sys.create_endpoint("LOG:MBRSHIP:FRAG:NAK:COM");
    auto& b = sys.create_endpoint("LOG:MBRSHIP:FRAG:NAK:COM");
    addr_a = a.address();
    addr_b = b.address();
    a.join(kGroup);
    sys.run_for(100 * sim::kMillisecond);
    b.join(kGroup, a.address());
    sys.run_for(2 * sim::kSecond);
    a.cast(kGroup, Message::from_string("important state 1"));
    a.cast(kGroup, Message::from_string("important state 2"));
    sys.run_for(sim::kSecond);
    // TOTAL crash: everyone dies.
    sys.crash(a);
    sys.crash(b);
    sys.run_for(sim::kSecond);
  }
  // A recovering process replays b's journal to rebuild its state.
  const auto& journal = store->journal(addr_b, kGroup);
  ASSERT_EQ(journal.size(), 2u);
  EXPECT_EQ(to_string(journal[0].payload), "important state 1");
  EXPECT_EQ(to_string(journal[1].payload), "important state 2");
  EXPECT_EQ(journal[0].source, addr_a);
}

TEST(LogLayer, JournalReplayRebuildsStateAfterTotalCrash) {
  // The recovery path end to end: a member's application state is a fold
  // over delivered casts; after a TOTAL crash, folding the journal instead
  // must reproduce the exact pre-crash state.
  auto store = std::make_shared<layers::LogStore>();
  HorusSystem::Options o = quiet();
  o.stack.log_store_erased = store;
  HorusSystem sys(o);
  Address addr_b;
  std::string live_state;  // what b's application actually built
  {
    auto& a = sys.create_endpoint("LOG:MBRSHIP:FRAG:NAK:COM");
    auto& b = sys.create_endpoint("LOG:MBRSHIP:FRAG:NAK:COM");
    addr_b = b.address();
    b.on_upcall([&](Group&, UpEvent& ev) {
      if (ev.type == UpType::kCast) {
        live_state += ev.msg.payload_string() + ";";
      }
    });
    a.join(kGroup);
    sys.run_for(100 * sim::kMillisecond);
    b.join(kGroup, a.address());
    sys.run_for(2 * sim::kSecond);
    a.cast(kGroup, Message::from_string("set x=1"));
    a.cast(kGroup, Message::from_string("set y=2"));
    a.cast(kGroup, Message::from_string("set x=3"));
    sys.run_for(sim::kSecond);
    sys.crash(a);
    sys.crash(b);
    sys.run_for(sim::kSecond);
  }
  ASSERT_FALSE(live_state.empty());
  // A new generation rebuilds b's state purely from the store.
  std::string recovered;
  for (const auto& e : store->journal(addr_b, kGroup)) {
    recovered += to_string(e.payload) + ";";
  }
  EXPECT_EQ(recovered, live_state);
}

TEST(LogStore, ConcurrentAppendAndSnapshotIsRaceFree) {
  // One LogStore is shared by multiple endpoints -- under a
  // ShardedExecutor their LOG layers append from different threads while
  // a recovering process (or a dump) reads. This hammers exactly that
  // access pattern directly; run under TSan it is the regression test for
  // the store's internal locking (journal() snapshots by value so readers
  // never hold references into a growing vector).
  layers::LogStore store;
  constexpr int kWriters = 4;
  constexpr int kAppends = 1000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      auto snap = store.journal(Address{1}, kGroup);
      if (!snap.empty()) {
        // Touch the copy: a dangling reference would blow up here.
        EXPECT_EQ(snap.front().msg_id, 0u);
      }
      (void)store.total_entries();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&store, t] {
      Address owner{static_cast<std::uint64_t>(t + 1)};
      for (int i = 0; i < kAppends; ++i) {
        store.append(owner, kGroup,
                     layers::LogStore::Entry{Address{99},
                                             static_cast<std::uint64_t>(i),
                                             Bytes{}});
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(store.total_entries(),
            static_cast<std::size_t>(kWriters) * kAppends);
  for (int t = 0; t < kWriters; ++t) {
    auto j = store.journal(Address{static_cast<std::uint64_t>(t + 1)}, kGroup);
    ASSERT_EQ(j.size(), static_cast<std::size_t>(kAppends));
    // Per-owner append order is preserved.
    for (int i = 0; i < kAppends; ++i) {
      EXPECT_EQ(j[static_cast<std::size_t>(i)].msg_id,
                static_cast<std::uint64_t>(i));
    }
  }
}

TEST(LogStore, ShardedEndpointsShareOneStoreSafely) {
  // The in-system version of the hammer above: three endpoints on sharded
  // executors journal into one store while the test thread takes
  // snapshots mid-flight. COM includes the sender in its own multicasts,
  // so every member journals every cast.
  auto store = std::make_shared<layers::LogStore>();
  HorusSystem::Options o = quiet();
  o.stack.log_store_erased = store;
  o.shards = 2;
  World w(3, "LOG:MBRSHIP:FRAG:NAK:COM", o);
  w.form_group();
  ASSERT_TRUE(w.converged());
  constexpr int kRounds = 10;
  for (int r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < w.eps.size(); ++i) {
      w.eps[i]->cast(kGroup, Message::from_string(
                                 "r" + std::to_string(r) + "e" +
                                 std::to_string(i)));
    }
    // Reads race with shard-thread appends: the TSan target.
    (void)store->total_entries();
    (void)store->journal(w.eps[0]->address(), kGroup);
    w.sys.run_for(200 * sim::kMillisecond);
  }
  w.sys.run_for(2 * sim::kSecond);
  const auto expected =
      static_cast<std::size_t>(kRounds) * w.eps.size();  // 30 casts total
  for (auto* ep : w.eps) {
    EXPECT_EQ(store->journal(ep->address(), kGroup).size(), expected);
  }
}

TEST(Trace, CountsEventsBothDirections) {
  World w(2, "TRACE:MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  w.eps[0]->cast(kGroup, Message::from_string("x"));
  w.sys.run_for(sim::kSecond);
  std::string d = w.eps[0]->dump(kGroup, "TRACE");
  EXPECT_NE(d.find("down:cast=1"), std::string::npos) << d;
  EXPECT_NE(d.find("up:CAST=1"), std::string::npos) << d;
  EXPECT_NE(d.find("up:VIEW="), std::string::npos) << d;
}

TEST(Trace, RecentRingCapsUnderOverflow) {
  World w(2, "TRACE:MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  // Push far more events through the layer than the ring holds: each cast
  // alone is one down + one up event at the sender.
  const int kCasts = 3 * static_cast<int>(layers::Trace::kRecentCap);
  for (int i = 0; i < kCasts; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("x"));
  }
  w.sys.run_for(2 * sim::kSecond);
  std::string d = w.eps[0]->dump(kGroup, "TRACE");
  // Counts are unbounded...
  EXPECT_NE(d.find("down:cast=" + std::to_string(kCasts)), std::string::npos)
      << d;
  // ...but the recent-event ring stays at its cap.
  EXPECT_NE(d.find(" recent=" + std::to_string(layers::Trace::kRecentCap) +
                   "\n"),
            std::string::npos)
      << d;
}

TEST(Account, RetainsDepartedPeerAcrossViewChange) {
  World w(3, "ACCOUNT:MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  Address departed = w.eps[2]->address();
  w.eps[2]->cast(kGroup, Message::from_string("abcde"));
  w.eps[2]->cast(kGroup, Message::from_string("fghij"));
  w.sys.run_for(sim::kSecond);
  // The metered peer leaves; the remaining members see a smaller view.
  w.eps[2]->leave(kGroup);
  w.sys.run_for(2 * sim::kSecond);
  ASSERT_FALSE(w.logs[0].views.empty());
  EXPECT_EQ(w.logs[0].views.back().size(), 2u);
  // Traffic after the view change must not erase the departed peer's books.
  w.eps[0]->cast(kGroup, Message::from_string("post-change"));
  w.sys.run_for(sim::kSecond);
  std::string d = w.eps[1]->dump(kGroup, "ACCOUNT");
  EXPECT_NE(d.find(to_string(departed) + "=2msg/10B"), std::string::npos) << d;
  EXPECT_NE(d.find(to_string(w.eps[0]->address()) + "=1msg/11B"),
            std::string::npos)
      << d;
}

TEST(Account, MetersPerPeerUsage) {
  World w(3, "ACCOUNT:MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.eps[1]->cast(kGroup, Message::from_string("12345"));
  w.eps[1]->cast(kGroup, Message::from_string("1234567890"));
  w.eps[2]->cast(kGroup, Message::from_string("abc"));
  w.sys.run_for(sim::kSecond);
  std::string d = w.eps[0]->dump(kGroup, "ACCOUNT");
  EXPECT_NE(d.find(to_string(w.eps[1]->address()) + "=2msg/15B"),
            std::string::npos)
      << d;
  EXPECT_NE(d.find(to_string(w.eps[2]->address()) + "=1msg/3B"),
            std::string::npos)
      << d;
}

TEST(Observe, AllThreeStackTogether) {
  World w(2, "TRACE:ACCOUNT:LOG:MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  w.eps[0]->cast(kGroup, Message::from_string("through all observers"));
  w.sys.run_for(sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "through all observers");
}

}  // namespace
}  // namespace horus::testing
