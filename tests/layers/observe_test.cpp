// LOG / TRACE / ACCOUNT: the observability protocol types of Figure 1's
// table, including LOG's headline capability -- recovering a group's
// delivered history after a TOTAL crash (every member gone).
#include "../common/test_util.hpp"
#include "horus/layers/observe.hpp"

namespace horus::testing {
namespace {

HorusSystem::Options quiet() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  return o;
}

TEST(LogLayer, JournalsDeliveredCasts) {
  auto store = std::make_shared<layers::LogStore>();
  HorusSystem::Options o = quiet();
  o.stack.log_store_erased = store;
  World w(2, "LOG:MBRSHIP:FRAG:NAK:COM", o);
  w.form_group();
  ASSERT_TRUE(w.converged());
  for (int i = 0; i < 5; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("j" + std::to_string(i)));
  }
  w.sys.run_for(sim::kSecond);
  const auto& journal = store->journal(w.eps[1]->address(), kGroup);
  ASSERT_EQ(journal.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(to_string(journal[static_cast<std::size_t>(i)].payload),
              "j" + std::to_string(i));
    EXPECT_EQ(journal[static_cast<std::size_t>(i)].source, w.eps[0]->address());
  }
}

TEST(LogLayer, TotalCrashRecovery) {
  // "logging -- tolerance of total crash failures": every member dies;
  // a new generation recovers the application history from the store.
  auto store = std::make_shared<layers::LogStore>();
  HorusSystem::Options o = quiet();
  o.stack.log_store_erased = store;
  HorusSystem sys(o);
  Address addr_a, addr_b;
  {
    auto& a = sys.create_endpoint("LOG:MBRSHIP:FRAG:NAK:COM");
    auto& b = sys.create_endpoint("LOG:MBRSHIP:FRAG:NAK:COM");
    addr_a = a.address();
    addr_b = b.address();
    a.join(kGroup);
    sys.run_for(100 * sim::kMillisecond);
    b.join(kGroup, a.address());
    sys.run_for(2 * sim::kSecond);
    a.cast(kGroup, Message::from_string("important state 1"));
    a.cast(kGroup, Message::from_string("important state 2"));
    sys.run_for(sim::kSecond);
    // TOTAL crash: everyone dies.
    sys.crash(a);
    sys.crash(b);
    sys.run_for(sim::kSecond);
  }
  // A recovering process replays b's journal to rebuild its state.
  const auto& journal = store->journal(addr_b, kGroup);
  ASSERT_EQ(journal.size(), 2u);
  EXPECT_EQ(to_string(journal[0].payload), "important state 1");
  EXPECT_EQ(to_string(journal[1].payload), "important state 2");
  EXPECT_EQ(journal[0].source, addr_a);
}

TEST(Trace, CountsEventsBothDirections) {
  World w(2, "TRACE:MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  w.eps[0]->cast(kGroup, Message::from_string("x"));
  w.sys.run_for(sim::kSecond);
  std::string d = w.eps[0]->dump(kGroup, "TRACE");
  EXPECT_NE(d.find("down:cast=1"), std::string::npos) << d;
  EXPECT_NE(d.find("up:CAST=1"), std::string::npos) << d;
  EXPECT_NE(d.find("up:VIEW="), std::string::npos) << d;
}

TEST(Account, MetersPerPeerUsage) {
  World w(3, "ACCOUNT:MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.eps[1]->cast(kGroup, Message::from_string("12345"));
  w.eps[1]->cast(kGroup, Message::from_string("1234567890"));
  w.eps[2]->cast(kGroup, Message::from_string("abc"));
  w.sys.run_for(sim::kSecond);
  std::string d = w.eps[0]->dump(kGroup, "ACCOUNT");
  EXPECT_NE(d.find(to_string(w.eps[1]->address()) + "=2msg/15B"),
            std::string::npos)
      << d;
  EXPECT_NE(d.find(to_string(w.eps[2]->address()) + "=1msg/3B"),
            std::string::npos)
      << d;
}

TEST(Observe, AllThreeStackTogether) {
  World w(2, "TRACE:ACCOUNT:LOG:MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  w.eps[0]->cast(kGroup, Message::from_string("through all observers"));
  w.sys.run_for(sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "through all observers");
}

}  // namespace
}  // namespace horus::testing
