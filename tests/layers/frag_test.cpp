// FRAG / NFRAG: fragmentation and reassembly of large messages (P12).
#include "../common/test_util.hpp"
#include "horus/util/rng.hpp"

namespace horus::testing {
namespace {

struct FragWorld : World {
  explicit FragWorld(std::size_t n, const std::string& spec = "FRAG:NAK:COM",
                     HorusSystem::Options o = {})
      : World(n, spec, o) {
    std::vector<Address> members;
    members.reserve(n);
    for (auto* ep : eps) members.push_back(ep->address());
    for (auto* ep : eps) {
      ep->join(kGroup);
      ep->install_view(kGroup, members);
    }
    sys.run_for(10 * sim::kMillisecond);
  }
};

std::string pattern(std::size_t n) {
  std::string s(n, ' ');
  for (std::size_t i = 0; i < n; ++i) s[i] = static_cast<char>('A' + (i * 31) % 26);
  return s;
}

TEST(Frag, SmallMessagePassesThrough) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  FragWorld w(2, "FRAG:NAK:COM", o);
  w.eps[0]->cast(kGroup, Message::from_string("tiny"));
  w.sys.run_for(sim::kSecond);
  const StackStats& s = w.eps[0]->stack().stats();
  // One cast to two members = exactly 2 data datagrams (plus controls on
  // timers, but within 1s only a handful of statuses). No fragmentation.
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "tiny");
  (void)s;
}

TEST(Frag, ExactlyAtBoundaryRoundTrips) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  FragWorld w(2, "FRAG:NAK:COM", o);
  // Sweep sizes around the fragmentation threshold (mtu - headroom).
  for (std::size_t size : {1200u, 1272u, 1273u, 1300u, 2544u, 2545u}) {
    std::string body = pattern(size);
    w.eps[0]->cast(kGroup, Message::from_payload(to_bytes(body)));
    w.sys.run_for(sim::kSecond);
    auto got = w.logs[1].casts_from(w.eps[0]->address());
    ASSERT_FALSE(got.empty()) << "size " << size;
    EXPECT_EQ(got.back().size(), size) << "size " << size;
    EXPECT_EQ(got.back(), body) << "size " << size;
  }
}

TEST(Frag, HugeMessageUnderLoss) {
  HorusSystem::Options o;
  o.net.loss = 0.2;
  FragWorld w(2, "FRAG:NAK:COM", o);
  std::string body = pattern(100'000);
  w.eps[0]->cast(kGroup, Message::from_payload(to_bytes(body)));
  w.sys.run_for(30 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], body);
}

TEST(Frag, InterleavedLargeAndSmall) {
  HorusSystem::Options o;
  o.net.loss = 0.05;
  FragWorld w(2, "FRAG:NAK:COM", o);
  std::string big = pattern(10'000);
  w.eps[0]->cast(kGroup, Message::from_string("before"));
  w.eps[0]->cast(kGroup, Message::from_payload(to_bytes(big)));
  w.eps[0]->cast(kGroup, Message::from_string("after"));
  w.sys.run_for(5 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "before");
  EXPECT_EQ(got[1], big);
  EXPECT_EQ(got[2], "after") << "FIFO must hold across fragmented messages";
}

TEST(Frag, LargeSubsetSend) {
  HorusSystem::Options o;
  o.net.loss = 0.1;
  FragWorld w(3, "FRAG:NAK:COM", o);
  std::string big = pattern(8'000);
  w.eps[0]->send(kGroup, {w.eps[2]->address()}, Message::from_payload(to_bytes(big)));
  w.sys.run_for(5 * sim::kSecond);
  ASSERT_EQ(w.logs[2].sends.size(), 1u);
  EXPECT_EQ(w.logs[2].sends[0].payload, big);
  EXPECT_TRUE(w.logs[1].sends.empty());
}

TEST(Frag, TwoSendersConcurrently) {
  HorusSystem::Options o;
  o.net.loss = 0.1;
  FragWorld w(2, "FRAG:NAK:COM", o);
  std::string b0 = pattern(20'000);
  std::string b1 = pattern(15'000) + "tail";
  w.eps[0]->cast(kGroup, Message::from_payload(to_bytes(b0)));
  w.eps[1]->cast(kGroup, Message::from_payload(to_bytes(b1)));
  w.sys.run_for(10 * sim::kSecond);
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()).at(0), b0);
  EXPECT_EQ(w.logs[0].casts_from(w.eps[1]->address()).at(0), b1);
}

TEST(Nfrag, ReassemblesOverUnreliableTransport) {
  // NFRAG sits straight on COM: no FIFO below it.
  HorusSystem::Options o;
  o.net.loss = 0.0;
  o.net.delay_min = 10;
  o.net.delay_max = 800;  // reorder fragments aggressively
  FragWorld w(2, "NFRAG:COM", o);
  std::string big = pattern(6'000);
  w.eps[0]->cast(kGroup, Message::from_payload(to_bytes(big)));
  w.sys.run_for(3 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], big);
}

TEST(Nfrag, IncompleteMessageDiscarded) {
  HorusSystem::Options o;
  o.net.loss = 0.5;  // many fragments die; no retransmission below NFRAG
  FragWorld w(2, "NFRAG:COM", o);
  int delivered_intact = 0;
  for (int i = 0; i < 20; ++i) {
    w.eps[0]->cast(kGroup, Message::from_payload(to_bytes(pattern(5'000))));
  }
  w.sys.run_for(5 * sim::kSecond);
  for (const auto& d : w.logs[1].casts) {
    EXPECT_EQ(d.payload, pattern(5'000)) << "partial reassembly leaked";
    ++delivered_intact;
  }
  EXPECT_LT(delivered_intact, 20) << "with 50% loss some messages must die";
}

TEST(Nfrag, SmallMessagesStillFlow) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  FragWorld w(2, "NFRAG:COM", o);
  w.eps[0]->cast(kGroup, Message::from_string("wee"));
  w.sys.run_for(sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "wee");
}

}  // namespace
}  // namespace horus::testing
