// MERGE layer unit behaviours (P16): probe discipline, probe/ack protocol,
// and not merging when there is nothing to merge.
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

HorusSystem::Options quiet() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  return o;
}

int probes_of(Endpoint* ep) {
  std::string d = ep->dump(kGroup, "MERGE");
  auto pos = d.find("probes=");
  return pos == std::string::npos ? -1 : std::atoi(d.c_str() + pos + 7);
}

int merges_of(Endpoint* ep) {
  std::string d = ep->dump(kGroup, "MERGE");
  auto pos = d.find("merges=");
  return pos == std::string::npos ? -1 : std::atoi(d.c_str() + pos + 7);
}

TEST(MergeLayer, NoProbesWhenViewComplete) {
  World w(3, "MERGE:MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.sys.run_for(5 * sim::kSecond);
  // Everyone it knows is in the view: the coordinator has nothing to probe.
  EXPECT_EQ(probes_of(w.eps[0]), 0);
  EXPECT_EQ(merges_of(w.eps[0]), 0);
}

TEST(MergeLayer, OnlyCoordinatorProbes) {
  World w(4, "MERGE:MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.sys.partition({{w.eps[0], w.eps[1]}, {w.eps[2], w.eps[3]}});
  w.sys.run_for(5 * sim::kSecond);
  // Probing is the coordinator's job: rank-1 members stay quiet (one probe
  // stream per partition).
  EXPECT_GT(probes_of(w.eps[0]), 0) << "left coordinator must probe";
  EXPECT_EQ(probes_of(w.eps[1]), 0) << "left non-coordinator must not";
  EXPECT_GT(probes_of(w.eps[2]), 0) << "right coordinator must probe";
  EXPECT_EQ(probes_of(w.eps[3]), 0) << "right non-coordinator must not";
}

TEST(MergeLayer, ProbesStopAfterHeal) {
  World w(4, "MERGE:MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  w.sys.partition({{w.eps[0], w.eps[1]}, {w.eps[2], w.eps[3]}});
  w.sys.run_for(5 * sim::kSecond);
  w.sys.heal();
  w.sys.run_for(15 * sim::kSecond);
  ASSERT_EQ(w.logs[0].views.back().size(), 4u) << "did not reunite";
  int after_merge = probes_of(w.eps[0]);
  w.sys.run_for(5 * sim::kSecond);
  EXPECT_EQ(probes_of(w.eps[0]), after_merge)
      << "coordinator keeps probing a complete view";
}

TEST(MergeLayer, CrashedMembersProbedButHarmless) {
  // A genuinely dead member is probed forever (we cannot tell dead from
  // partitioned -- the fail-stop simulation again); the probes go nowhere
  // and nothing breaks.
  World w(3, "MERGE:MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  w.sys.crash(*w.eps[2]);
  w.sys.run_for(8 * sim::kSecond);
  EXPECT_EQ(w.logs[0].views.back().size(), 2u);
  EXPECT_GT(probes_of(w.eps[0]), 0);
  EXPECT_EQ(merges_of(w.eps[0]), 0) << "no phantom merges toward the dead";
}

}  // namespace
}  // namespace horus::testing
