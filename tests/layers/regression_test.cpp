// Regression tests for protocol bugs found (and fixed) during development.
// Each test reconstructs the precise triggering scenario; see the comments
// for the failure mode it guards against.
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

HorusSystem::Options quiet() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  return o;
}

// BUG 1: a one-shot unicast control message (e.g. a VIEWINSTALL) that was
// lost could never be recovered: the receiver had no idea the stream
// existed, so it never NAKed. Fixed by advertising per-destination unicast
// send positions in NAK's status gossip.
TEST(Regression, OneShotUnicastLossRecovered) {
  HorusSystem::Options o = quiet();
  World w(2, "NAK:COM", o);
  std::vector<Address> members = {w.eps[0]->address(), w.eps[1]->address()};
  for (auto* ep : w.eps) {
    ep->join(kGroup);
    ep->install_view(kGroup, members);
  }
  w.sys.run_for(10 * sim::kMillisecond);
  // Kill the link for exactly one subset send, then restore it. No further
  // unicast traffic flows on that stream -- recovery must come from the
  // status reports alone.
  sim::LinkParams dead;
  dead.loss = 1.0;
  w.sys.net().set_link_params(w.eps[0]->address().id, w.eps[1]->address().id, dead);
  w.eps[0]->send(kGroup, {w.eps[1]->address()}, Message::from_string("only one"));
  w.sys.run_for(5 * sim::kMillisecond);
  w.sys.net().clear_link_params(w.eps[0]->address().id, w.eps[1]->address().id);
  w.sys.run_for(2 * sim::kSecond);
  ASSERT_EQ(w.logs[1].sends.size(), 1u)
      << "the lost one-shot unicast was never repaired";
  EXPECT_EQ(w.logs[1].sends[0].payload, "only one");
}

// BUG 2: a sender's OWN last multicast could be lost on loopback forever:
// nobody sends status reports to themselves, so the tail loss was
// invisible. Fixed by recording our own stream extent at send time.
TEST(Regression, SenderRecoversOwnLoopbackTailLoss) {
  HorusSystem::Options o = quiet();
  World w(2, "NAK:COM", o);
  std::vector<Address> members = {w.eps[0]->address(), w.eps[1]->address()};
  for (auto* ep : w.eps) {
    ep->join(kGroup);
    ep->install_view(kGroup, members);
  }
  w.sys.run_for(10 * sim::kMillisecond);
  // Self-link drops everything for the moment of the final cast.
  sim::LinkParams dead;
  dead.loss = 1.0;
  w.sys.net().set_link_params(w.eps[0]->address().id, w.eps[0]->address().id, dead);
  w.eps[0]->cast(kGroup, Message::from_string("my last words"));
  w.sys.run_for(5 * sim::kMillisecond);
  w.sys.net().clear_link_params(w.eps[0]->address().id, w.eps[0]->address().id);
  // NOTHING else is ever sent. The sender must still self-repair.
  w.sys.run_for(2 * sim::kSecond);
  ASSERT_EQ(w.logs[0].casts.size(), 1u)
      << "sender never delivered its own final cast";
  EXPECT_EQ(w.logs[0].casts[0].payload, "my last words");
}

// BUG 3: a VIEWINSTALL/RESYNC from a *foreign* partition lineage with a
// higher view seq, not containing the receiver, used to eject the receiver
// from its own healthy group (EXIT). Exclusion must only be honored from
// the member's own view chain.
TEST(Regression, ForeignLineageInstallDoesNotEject) {
  World w(4, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  // Split 2|2 and churn the RIGHT side through several views so its seq
  // races ahead of the left's.
  w.sys.partition({{w.eps[0], w.eps[1]}, {w.eps[2], w.eps[3]}});
  w.sys.run_for(4 * sim::kSecond);
  // Right side: force extra flushes via the external detector (false
  // suspicion + rejoin bumps the seq).
  w.eps[2]->flush(kGroup, {w.eps[3]->address()});
  w.sys.run_for(2 * sim::kSecond);
  w.eps[3]->join(kGroup, w.eps[2]->address());
  w.sys.run_for(2 * sim::kSecond);
  // Heal; the right coordinator's higher-seq views will reach the left
  // side during merging. Nobody on the left may be ejected.
  w.sys.heal();
  w.eps[2]->merge(kGroup, w.eps[0]->address());
  w.sys.run_for(10 * sim::kSecond);
  EXPECT_EQ(w.logs[0].exits, 0) << "left member 0 was ejected";
  EXPECT_EQ(w.logs[1].exits, 0) << "left member 1 was ejected";
  // And the group eventually reunites.
  EXPECT_EQ(w.logs[0].views.back().size(), 4u)
      << "final view " << w.logs[0].views.back().to_string();
}

// BUG 4: STABLE's gossip used to ride the multicast stream, consuming
// MBRSHIP sequence numbers the application could never ack -- the
// stability prefix froze at the first gossip. Guard: prefix must pass a
// gossip boundary.
TEST(Regression, StabilityAdvancesPastGossip) {
  HorusSystem::Options o = quiet();
  o.stack.stability_gossip_interval = 15 * sim::kMillisecond;
  World w(2, "SAFE:STABLE:MBRSHIP:FRAG:NAK:COM", o);
  w.form_group();
  ASSERT_TRUE(w.converged());
  // Spread casts across many gossip intervals.
  for (int i = 0; i < 8; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("s" + std::to_string(i)));
    w.sys.run_for(50 * sim::kMillisecond);
  }
  w.sys.run_for(3 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 8u) << "SAFE stalled behind un-ackable gossip casts";
}

}  // namespace
}  // namespace horus::testing
