// TOTAL layer: agreement on a single delivery order, token behaviour,
// and the deterministic re-ordering rule at view changes (Section 7).
#include <algorithm>

#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

constexpr const char* kStack = "TOTAL:MBRSHIP:FRAG:NAK:COM";

TEST(Total, AllMembersSameOrderConcurrentSenders) {
  HorusSystem::Options o;
  o.net.loss = 0.05;
  World w(4, kStack, o);
  w.form_group();
  ASSERT_TRUE(w.converged());
  // Everyone casts concurrently, repeatedly.
  for (int round = 0; round < 10; ++round) {
    for (std::size_t m = 0; m < 4; ++m) {
      w.eps[m]->cast(kGroup, Message::from_string(
                                 "r" + std::to_string(round) + "." + std::to_string(m)));
    }
    w.sys.run_for(30 * sim::kMillisecond);
  }
  w.sys.run_for(10 * sim::kSecond);
  auto ref = w.logs[0].all_cast_payloads();
  ASSERT_EQ(ref.size(), 40u);
  for (std::size_t m = 1; m < 4; ++m) {
    EXPECT_EQ(w.logs[m].all_cast_payloads(), ref)
        << "member " << m << " delivered a different total order";
  }
}

TEST(Total, OrderIsFifoPerSender) {
  // Total order must extend each sender's FIFO order.
  HorusSystem::Options o;
  o.net.loss = 0.0;
  World w(3, kStack, o);
  w.form_group();
  for (int i = 0; i < 20; ++i) {
    w.eps[1]->cast(kGroup, Message::from_string(std::to_string(i)));
  }
  w.sys.run_for(5 * sim::kSecond);
  auto got = w.logs[2].casts_from(w.eps[1]->address());
  ASSERT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], std::to_string(i));
  }
}

TEST(Total, TokenRotatesAmongSenders) {
  // With several active senders the token must visit them all (no sender
  // starves): every member's casts eventually appear.
  HorusSystem::Options o;
  o.net.loss = 0.0;
  World w(5, kStack, o);
  w.form_group();
  ASSERT_TRUE(w.converged());
  for (std::size_t m = 0; m < 5; ++m) {
    for (int i = 0; i < 5; ++i) {
      w.eps[m]->cast(kGroup, Message::from_string("s" + std::to_string(m)));
    }
  }
  w.sys.run_for(10 * sim::kSecond);
  for (std::size_t m = 0; m < 5; ++m) {
    EXPECT_EQ(w.logs[0].casts_from(w.eps[m]->address()).size(), 5u)
        << "sender " << m << " starved";
  }
}

TEST(Total, SurvivesTokenHolderCrash) {
  // Section 7: "In case of a failure, the token may be lost. This,
  // however, is not a problem."
  HorusSystem::Options o;
  o.net.loss = 0.0;
  World w(4, kStack, o);
  w.form_group();
  ASSERT_TRUE(w.converged());
  // Rank 0 holds the first token; crash it while traffic flows.
  for (std::size_t m = 1; m < 4; ++m) {
    w.eps[m]->cast(kGroup, Message::from_string("pre" + std::to_string(m)));
  }
  w.sys.run_for(20 * sim::kMillisecond);
  w.sys.crash(*w.eps[0]);
  for (std::size_t m = 1; m < 4; ++m) {
    w.eps[m]->cast(kGroup, Message::from_string("post" + std::to_string(m)));
  }
  w.sys.run_for(10 * sim::kSecond);
  // All survivors agree on one order containing all six messages.
  auto ref = w.logs[1].all_cast_payloads();
  EXPECT_EQ(ref.size(), 6u);
  for (std::size_t m = 2; m < 4; ++m) {
    EXPECT_EQ(w.logs[m].all_cast_payloads(), ref) << "member " << m;
  }
}

TEST(Total, ViewChangeOrderDeterministic) {
  // Messages in flight at a crash get the deterministic rank-order rule;
  // run the same scenario at every member and require identical orders.
  HorusSystem::Options o;
  o.net.loss = 0.1;
  o.seed = 77;
  World w(5, kStack, o);
  w.form_group();
  ASSERT_TRUE(w.converged());
  for (int burst = 0; burst < 3; ++burst) {
    for (std::size_t m = 0; m < 5; ++m) {
      w.eps[m]->cast(kGroup,
                     Message::from_string("b" + std::to_string(burst) + "." +
                                          std::to_string(m)));
    }
    if (burst == 1) w.sys.crash(*w.eps[2]);
    w.sys.run_for(50 * sim::kMillisecond);
  }
  w.sys.run_for(10 * sim::kSecond);
  auto ref = w.logs[0].all_cast_payloads();
  for (std::size_t m : {1u, 3u, 4u}) {
    EXPECT_EQ(w.logs[m].all_cast_payloads(), ref)
        << "member " << m << " diverged across the view change";
  }
}

TEST(Total, NoDuplicatesNoReordersLongRun) {
  HorusSystem::Options o;
  o.net.loss = 0.08;
  o.net.duplicate = 0.05;
  World w(3, kStack, o);
  w.form_group();
  for (int i = 0; i < 60; ++i) {
    w.eps[static_cast<std::size_t>(i % 3)]->cast(
        kGroup, Message::from_string("n" + std::to_string(i)));
    w.sys.run_for(10 * sim::kMillisecond);
  }
  w.sys.run_for(10 * sim::kSecond);
  auto all = w.logs[0].all_cast_payloads();
  ASSERT_EQ(all.size(), 60u);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end()) << "duplicates";
}

}  // namespace
}  // namespace horus::testing
