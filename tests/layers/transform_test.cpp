// The content-transform layers: CHKSUM, SIGN, ENCRYPT, COMPRESS -- each is
// "just another layer", insertable anywhere, in any combination.
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

struct XWorld : World {
  XWorld(std::size_t n, const std::string& spec, HorusSystem::Options o = {})
      : World(n, spec, o) {
    std::vector<Address> members;
    members.reserve(n);
    for (auto* ep : eps) members.push_back(ep->address());
    for (auto* ep : eps) {
      ep->join(kGroup);
      ep->install_view(kGroup, members);
    }
    sys.run_for(10 * sim::kMillisecond);
  }
};

HorusSystem::Options quiet() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  return o;
}

TEST(Chksum, PassesCleanTraffic) {
  XWorld w(2, "NAK:CHKSUM:RAWCOM", quiet());
  for (int i = 0; i < 10; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("ok" + std::to_string(i)));
  }
  w.sys.run_for(sim::kSecond);
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()).size(), 10u);
}

TEST(Chksum, DropsCorruptionOverRawCom) {
  HorusSystem::Options o = quiet();
  o.net.corrupt = 1.0;
  XWorld w(2, "CHKSUM:RAWCOM", o);
  for (int i = 0; i < 30; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("garble-me-garble-me-please"));
  }
  w.sys.run_for(sim::kSecond);
  // Any cast that still arrives must be byte-exact; corrupted ones are
  // dropped. (Corruption may land in the COM header too, in which case
  // RAWCOM mis-routes and drops -- either way nothing garbled surfaces.)
  for (const auto& d : w.logs[1].casts) {
    EXPECT_EQ(d.payload, "garble-me-garble-me-please");
  }
  EXPECT_LT(w.logs[1].casts.size(), 30u);
}

TEST(Chksum, RecoveredByNakAbove) {
  // The full composition story: NAK above CHKSUM sees corrupted datagrams
  // as losses and repairs them -- reliable FIFO over a garbling network
  // without COM's built-in checksum.
  HorusSystem::Options o = quiet();
  o.net.corrupt = 0.3;
  XWorld w(2, "NAK:CHKSUM:RAWCOM", o);
  for (int i = 0; i < 50; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string(std::to_string(i)));
  }
  w.sys.run_for(10 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], std::to_string(i));
  }
}

TEST(Sign, AuthenticTrafficFlows) {
  XWorld w(2, "SIGN:NAK:COM", quiet());
  w.eps[0]->cast(kGroup, Message::from_string("signed"));
  w.sys.run_for(sim::kSecond);
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()).size(), 1u);
}

TEST(Sign, IntruderWithWrongKeyRejected) {
  // Two systems-worth of endpoints on one network; the intruder runs the
  // same stack but a different group key. Its casts must never surface at
  // the legitimate member.
  HorusSystem::Options good = quiet();
  good.stack.key = Key{111, 222};
  HorusSystem sys(good);
  auto& a = sys.create_endpoint("SIGN:NAK:COM");
  auto& b = sys.create_endpoint("SIGN:NAK:COM");
  AppLog la, lb;
  la.attach(a);
  lb.attach(b);
  std::vector<Address> members = {a.address(), b.address()};
  for (Endpoint* ep : {&a, &b}) {
    ep->join(kGroup);
    ep->install_view(kGroup, members);
  }
  sys.run_for(10 * sim::kMillisecond);
  a.cast(kGroup, Message::from_string("legit"));
  sys.run_for(sim::kSecond);
  ASSERT_EQ(lb.casts.size(), 1u);

  // The intruder: same topology, different key, impersonating a's view.
  HorusSystem::Options evil = quiet();
  evil.stack.key = Key{999, 999};
  // (Same network is required for a real injection test; we emulate the
  // intruder by re-keying endpoint a and showing b now rejects it.)
  sys.config().key = Key{999, 999};
  // New endpoints pick up the changed config; rebuild a sender.
  auto& mallory = sys.create_endpoint("SIGN:NAK:COM");
  mallory.join(kGroup);
  mallory.install_view(kGroup, {mallory.address(), b.address()});
  sys.run_for(10 * sim::kMillisecond);
  mallory.cast(kGroup, Message::from_string("forged"));
  sys.run_for(sim::kSecond);
  for (const auto& d : lb.casts) EXPECT_NE(d.payload, "forged");
}

TEST(Encrypt, RoundTripsThroughStack) {
  XWorld w(2, "ENCRYPT:NAK:COM", quiet());
  w.eps[0]->cast(kGroup, Message::from_string("private business"));
  w.sys.run_for(sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "private business");
}

TEST(Encrypt, EavesdropperSeesOnlyCiphertext) {
  // A passive eavesdropper: an endpoint running a bare RAWCOM stack that
  // is included in the sender's destination view. It receives the raw
  // datagram content above COM -- with ENCRYPT in the sender's stack that
  // content must not contain the plaintext; without it, it does.
  auto snoop = [](const std::string& sender_stack, const std::string& secret) {
    HorusSystem::Options o = quiet();
    HorusSystem sys(o);
    auto& alice = sys.create_endpoint(sender_stack);
    auto& eve = sys.create_endpoint("RAWCOM");
    std::string captured;
    eve.on_upcall([&](Group&, UpEvent& ev) {
      if (ev.type == UpType::kCast || ev.type == UpType::kSend) {
        captured += ev.msg.payload_string();
      }
    });
    alice.join(kGroup);
    alice.install_view(kGroup, {alice.address(), eve.address()});
    eve.join(kGroup);
    sys.run_for(10 * sim::kMillisecond);
    alice.cast(kGroup, Message::from_string(secret));
    sys.run_for(sim::kSecond);
    return captured;
  };
  const std::string secret = "TOPSECRET-TOPSECRET-TOPSECRET";
  std::string with = snoop("NNAK:ENCRYPT:CHKSUM:RAWCOM", secret);
  EXPECT_EQ(with.find(secret), std::string::npos)
      << "plaintext leaked onto the wire despite ENCRYPT";
  std::string without = snoop("NNAK:CHKSUM:RAWCOM", secret);
  EXPECT_NE(without.find(secret), std::string::npos)
      << "control: without ENCRYPT the plaintext is visible";
}

TEST(Compress, RoundTripsCompressible) {
  XWorld w(2, "COMPRESS:FRAG:NAK:COM", quiet());
  std::string body(5'000, 'z');
  w.eps[0]->cast(kGroup, Message::from_payload(to_bytes(body)));
  w.sys.run_for(2 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], body);
}

TEST(Compress, SavesWireBytesOnCompressibleData) {
  auto wire_bytes = [](const std::string& spec) {
    XWorld w(2, spec, quiet());
    std::string body(4'000, 'q');
    w.eps[0]->stack().reset_stats();
    w.eps[0]->cast(kGroup, Message::from_payload(to_bytes(body)));
    w.sys.run_for(2 * sim::kSecond);
    return w.eps[0]->stack().stats().wire_bytes_sent.load();
  };
  std::uint64_t with = wire_bytes("COMPRESS:FRAG:NAK:COM");
  std::uint64_t without = wire_bytes("FRAG:NAK:COM");
  // Total wire volume includes fixed control traffic (status gossip), so
  // the observable ratio is below the pure payload ratio; 2x is robust.
  EXPECT_LT(with, without / 2) << "compression should shrink the wire volume";
}

TEST(Compress, IncompressibleFallsThrough) {
  XWorld w(2, "COMPRESS:FRAG:NAK:COM", quiet());
  Rng rng(5);
  Bytes noise(3'000, 0);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u64());
  w.eps[0]->cast(kGroup, Message::from_payload(Bytes(noise)));
  w.sys.run_for(2 * sim::kSecond);
  ASSERT_EQ(w.logs[1].casts.size(), 1u);
  EXPECT_EQ(to_bytes(w.logs[1].casts[0].payload), noise);
}

TEST(Combined, FullSecurityStackComposes) {
  // Everything at once: compression over encryption over signing over
  // reliable FIFO -- the LEGO claim.
  XWorld w(2, "COMPRESS:ENCRYPT:SIGN:FRAG:NAK:COM", quiet());
  std::string body = "attack at dawn; bring " + std::string(2000, 'x');
  w.eps[0]->cast(kGroup, Message::from_payload(to_bytes(body)));
  w.sys.run_for(2 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], body);
}

TEST(Combined, TransformsUnderLossAndCorruption) {
  HorusSystem::Options o = quiet();
  o.net.loss = 0.15;
  o.net.corrupt = 0.1;
  XWorld w(2, "COMPRESS:ENCRYPT:SIGN:NAK:CHKSUM:RAWCOM", o);
  for (int i = 0; i < 25; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("n=" + std::to_string(i)));
  }
  w.sys.run_for(15 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], "n=" + std::to_string(i));
  }
}

}  // namespace
}  // namespace horus::testing
