// Application-controlled membership: the flush_ok, merge_granted and
// merge_denied downcalls of Table 1, and the FLUSH_OK / MERGE_DENIED
// upcalls of Table 2.
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

HorusSystem::Options quiet() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  return o;
}

TEST(AppFlush, FlushWaitsForFlushOk) {
  HorusSystem::Options o = quiet();
  o.stack.app_controls_flush = true;
  World w(3, "MBRSHIP:FRAG:NAK:COM", o);
  // Everyone answers flush_ok promptly -- except the coordinator, which
  // starts withholding once the group has formed.
  int flush_upcalls_at_0 = 0;
  bool withhold = false;  // armed after formation
  bool released = false;
  for (std::size_t i = 0; i < 3; ++i) {
    Endpoint* ep = w.eps[i];
    AppLog* log = &w.logs[i];
    bool is_coord = i == 0;
    ep->on_upcall([ep, log, is_coord, &flush_upcalls_at_0, &withhold,
                   &released](Group& g, UpEvent& ev) {
      if (ev.type == UpType::kView) log->views.push_back(ev.view);
      if (ev.type == UpType::kFlush) {
        if (is_coord && withhold) {
          ++flush_upcalls_at_0;
          if (released) ep->flush_ok(g.gid());
        } else {
          ep->flush_ok(g.gid());
        }
      }
    });
  }
  w.form_group();
  ASSERT_TRUE(w.converged());
  withhold = true;
  std::size_t views_before = w.logs[0].views.size();
  w.sys.crash(*w.eps[2]);
  w.sys.run_for(3 * sim::kSecond);
  // The coordinator never said flush_ok: the view must NOT have changed.
  EXPECT_GT(flush_upcalls_at_0, 0) << "flush never started";
  EXPECT_EQ(w.logs[0].views.size(), views_before)
      << "view installed without the coordinator's flush_ok";
  // Now release it.
  released = true;
  w.eps[0]->flush_ok(kGroup);
  w.sys.run_for(3 * sim::kSecond);
  ASSERT_GT(w.logs[0].views.size(), views_before);
  EXPECT_EQ(w.logs[0].views.back().size(), 2u);
}

TEST(AppFlush, FlushOkUpcallOnCompletion) {
  World w(3, "MBRSHIP:FRAG:NAK:COM", quiet());
  int flush_ok_upcalls = 0;
  w.form_group();
  w.eps[0]->on_upcall([&](Group&, UpEvent& ev) {
    if (ev.type == UpType::kFlushOk) ++flush_ok_upcalls;
  });
  w.sys.crash(*w.eps[2]);
  w.sys.run_for(3 * sim::kSecond);
  EXPECT_GT(flush_ok_upcalls, 0) << "no FLUSH_OK (flush completed) upcall";
}

class AppMergeTest : public ::testing::Test {
 protected:
  AppMergeTest() {
    HorusSystem::Options o = quiet();
    o.stack.app_controls_merge = true;
    w = std::make_unique<World>(4, "MBRSHIP:FRAG:NAK:COM", o);
    w->form_group();
    // Split and let both sides settle into their own views.
    w->sys.partition({{w->eps[0], w->eps[1]}, {w->eps[2], w->eps[3]}});
    w->sys.run_for(5 * sim::kSecond);
    w->sys.heal();
    w->sys.run_for(sim::kSecond);
  }
  std::unique_ptr<World> w;
};

TEST_F(AppMergeTest, MergeHeldUntilGranted) {
  ASSERT_EQ(w->logs[0].views.back().size(), 2u);
  bool requested = false;
  w->eps[0]->on_upcall([&](Group&, UpEvent& ev) {
    if (ev.type == UpType::kMergeRequest) requested = true;
    if (ev.type == UpType::kView) w->logs[0].views.push_back(ev.view);
  });
  w->eps[2]->merge(kGroup, w->eps[0]->address());
  w->sys.run_for(3 * sim::kSecond);
  EXPECT_TRUE(requested) << "MERGE_REQUEST upcall missing";
  EXPECT_EQ(w->logs[0].views.back().size(), 2u)
      << "merge proceeded without merge_granted";
  // Grant it.
  w->eps[0]->merge_granted(kGroup);
  w->sys.run_for(8 * sim::kSecond);
  EXPECT_EQ(w->logs[0].views.back().size(), 4u) << "grant did not merge";
}

TEST_F(AppMergeTest, MergeDeniedNotifiesRequester) {
  bool denied_at_requester = false;
  w->eps[2]->on_upcall([&](Group&, UpEvent& ev) {
    if (ev.type == UpType::kMergeDenied) denied_at_requester = true;
  });
  w->eps[0]->on_upcall([&](Group& g, UpEvent& ev) {
    if (ev.type == UpType::kMergeRequest) {
      w->eps[0]->merge_denied(g.gid(), "not today");
    }
  });
  w->eps[2]->merge(kGroup, w->eps[0]->address());
  w->sys.run_for(3 * sim::kSecond);
  EXPECT_TRUE(denied_at_requester) << "MERGE_DENIED upcall missing";
  // Views stay separate.
  EXPECT_EQ(w->eps[0]->group(kGroup).view().size(), 2u);
  EXPECT_EQ(w->eps[2]->group(kGroup).view().size(), 2u);
}

}  // namespace
}  // namespace horus::testing
