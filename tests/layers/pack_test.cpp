// PACK: the protocol accelerator. Consecutive small casts coalesce into
// one train behind one descent/datagram; the receive side fans a train back
// out into individual deliveries. Covers all three flush triggers, the
// single-cast pass-through, pre-splitting against the byte budget (FRAG
// must never slice mid-train), barrier flushes around view changes, the
// corrupted-train drop policy, and the batched send path.
#include "../common/test_util.hpp"
#include "horus/layers/registry.hpp"
#include "horus/util/crc32.hpp"
#include "horus/util/hotpath_stats.hpp"

namespace horus::testing {
namespace {

constexpr const char* kPackStack = "PACK:FRAG:NAK:COM";
constexpr const char* kPackOrdered = "PACK:TOTAL:MBRSHIP:FRAG:NAK:COM";

/// Snapshot of the global packing counters, for delta assertions (the
/// stats object is process-wide; tests in this binary share it).
struct PackStatsDelta {
  std::uint64_t packs_built, casts_packed, flushes_by_size, flushes_by_count,
      flushes_by_timer, trains_unpacked, casts_unpacked, corrupt_trains,
      batch_descents, batched_events;

  static PackStatsDelta snap() {
    MsgPathStats& s = msg_path_stats();
    return {s.packs_built.load(),     s.casts_packed.load(),
            s.flushes_by_size.load(), s.flushes_by_count.load(),
            s.flushes_by_timer.load(), s.trains_unpacked.load(),
            s.casts_unpacked.load(),  s.corrupt_trains.load(),
            s.batch_descents.load(),  s.batched_events.load()};
  }
  PackStatsDelta since() const {
    PackStatsDelta now = snap();
    return {now.packs_built - packs_built,
            now.casts_packed - casts_packed,
            now.flushes_by_size - flushes_by_size,
            now.flushes_by_count - flushes_by_count,
            now.flushes_by_timer - flushes_by_timer,
            now.trains_unpacked - trains_unpacked,
            now.casts_unpacked - casts_unpacked,
            now.corrupt_trains - corrupt_trains,
            now.batch_descents - batch_descents,
            now.batched_events - batched_events};
  }
};

struct PackWorld : World {
  explicit PackWorld(std::size_t n, const std::string& spec = kPackStack,
                     HorusSystem::Options o = {})
      : World(n, spec, o) {
    std::vector<Address> members;
    members.reserve(n);
    for (auto* ep : eps) members.push_back(ep->address());
    for (auto* ep : eps) {
      ep->join(kGroup);
      ep->install_view(kGroup, members);
    }
    sys.run_for(10 * sim::kMillisecond);
  }
};

std::vector<std::string> numbered(std::size_t n, const std::string& prefix) {
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

// -- packing and unpacking preserve order, content and count -----------------

TEST(Pack, OrderAndContentPreservedThroughTrains) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  PackWorld w(2, kPackStack, o);
  PackStatsDelta base = PackStatsDelta::snap();
  std::vector<std::string> sent = numbered(10, "m");
  for (const std::string& s : sent) {
    w.eps[0]->cast(kGroup, Message::from_string(s));
  }
  w.sys.run_for(sim::kSecond);
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()), sent);
  // A member delivers its own casts too -- through the same unpack path.
  EXPECT_EQ(w.logs[0].casts_from(w.eps[0]->address()), sent);
  PackStatsDelta d = base.since();
  EXPECT_GE(d.packs_built, 1u);
  EXPECT_EQ(d.casts_packed, 10u);
  EXPECT_GE(d.trains_unpacked, 2u);  // both members unpack
  EXPECT_GE(d.casts_unpacked, 20u);
  std::string dump = w.eps[1]->dump(kGroup, "PACK");
  EXPECT_NE(dump.find("unpacked=10"), std::string::npos) << dump;
}

TEST(Pack, SingleCastPassesThroughUnpacked) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  PackWorld w(2, kPackStack, o);
  PackStatsDelta base = PackStatsDelta::snap();
  w.eps[0]->cast(kGroup, Message::from_string("lonely"));
  w.sys.run_for(sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "lonely");
  PackStatsDelta d = base.since();
  // The timer fired, found a train of one, and sent it unpacked: framing a
  // single cast would only add bytes.
  EXPECT_EQ(d.packs_built, 0u);
  EXPECT_GE(d.flushes_by_timer, 1u);
  std::string dump = w.eps[0]->dump(kGroup, "PACK");
  EXPECT_NE(dump.find("passthrough=1"), std::string::npos) << dump;
}

// -- the three flush triggers ------------------------------------------------

TEST(Pack, CountCapFlushesWithoutWaitingForTimer) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  o.stack.packing.max_count = 4;
  PackWorld w(2, kPackStack, o);
  PackStatsDelta base = PackStatsDelta::snap();
  std::vector<std::string> sent = numbered(8, "c");
  for (const std::string& s : sent) {
    w.eps[0]->cast(kGroup, Message::from_string(s));
  }
  // Well under the 2ms flush timer: both trains must be count-flushed.
  w.sys.run_for(sim::kMillisecond);
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()), sent);
  PackStatsDelta d = base.since();
  EXPECT_EQ(d.flushes_by_count, 2u);
  EXPECT_EQ(d.packs_built, 2u);
  EXPECT_EQ(d.casts_packed, 8u);
}

TEST(Pack, ByteBudgetPreSplitsTrains) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  o.stack.packing.max_bytes = 256;
  o.stack.packing.max_count = 1000;  // only the byte budget should trigger
  PackWorld w(2, kPackStack, o);
  PackStatsDelta base = PackStatsDelta::snap();
  std::vector<std::string> sent;
  for (std::size_t i = 0; i < 10; ++i) {
    sent.push_back(std::string(100, static_cast<char>('a' + i)));
    w.eps[0]->cast(kGroup, Message::from_string(sent.back()));
  }
  w.sys.run_for(sim::kSecond);
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()), sent);
  PackStatsDelta d = base.since();
  // 100-byte elements against a 256-byte budget: two per train, the third
  // would overflow, so it starts the next train (pre-split, never relying
  // on FRAG mid-train).
  EXPECT_GE(d.flushes_by_size, 4u);
  EXPECT_GE(d.packs_built, 4u);
}

TEST(Pack, TimerFlushBoundsLatencyOfAPartialTrain) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  o.stack.packing.max_count = 100;  // never reached by 3 casts
  PackWorld w(2, kPackStack, o);
  PackStatsDelta base = PackStatsDelta::snap();
  std::vector<std::string> sent = numbered(3, "t");
  for (const std::string& s : sent) {
    w.eps[0]->cast(kGroup, Message::from_string(s));
  }
  w.sys.run_for(sim::kMillisecond);  // < flush_after: still buffered
  EXPECT_TRUE(w.logs[1].casts.empty());
  w.sys.run_for(sim::kSecond);  // timer fires at flush_after (2ms default)
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()), sent);
  PackStatsDelta d = base.since();
  EXPECT_GE(d.flushes_by_timer, 1u);
  EXPECT_EQ(d.casts_packed, 3u);
}

// -- interaction with FRAG ---------------------------------------------------

TEST(Pack, OversizeCastBypassesPackingAndFragments) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  PackWorld w(2, kPackStack, o);
  PackStatsDelta base = PackStatsDelta::snap();
  std::string big(5000, 'B');
  w.eps[0]->cast(kGroup, Message::from_string("small-before"));
  w.eps[0]->cast(kGroup, Message::from_payload(to_bytes(big)));
  w.eps[0]->cast(kGroup, Message::from_string("small-after"));
  w.sys.run_for(sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "small-before");
  EXPECT_EQ(got[1], big);
  EXPECT_EQ(got[2], "small-after") << "cast order must hold across the bypass";
  std::string dump = w.eps[0]->dump(kGroup, "FRAG");
  EXPECT_EQ(dump.find("fragmented=0"), std::string::npos)
      << "the oversize cast must have been fragmented: " << dump;
  (void)base;
}

TEST(Pack, TrainsNeverRelyOnFragmentation) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  PackWorld w(2, kPackStack, o);
  PackStatsDelta base = PackStatsDelta::snap();
  // 200 casts of 64 bytes: many full trains right at the byte budget. If
  // the budget were not MTU-aware, lower headers would push some train
  // over the threshold and FRAG would slice it.
  for (std::size_t i = 0; i < 200; ++i) {
    w.eps[0]->cast(kGroup, Message::from_payload(Bytes(64, 0x5a)));
  }
  w.sys.run_for(2 * sim::kSecond);
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()).size(), 200u);
  PackStatsDelta d = base.since();
  EXPECT_GE(d.packs_built, 1u);
  std::string dump = w.eps[0]->dump(kGroup, "FRAG");
  EXPECT_NE(dump.find("fragmented=0"), std::string::npos)
      << "a packed train must never be fragmented below PACK: " << dump;
}

// -- barrier semantics -------------------------------------------------------

TEST(Pack, PendingCastsSurviveAViewChange) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  o.stack.packing.max_count = 100;  // force the casts to sit in the buffer
  World w(3, kPackOrdered, o);
  // Form a 2-member group first; the third endpoint joins mid-traffic.
  w.eps[0]->join(kGroup);
  w.sys.run_for(50 * sim::kMillisecond);
  w.eps[1]->join(kGroup, w.eps[0]->address());
  w.sys.run_for(2 * sim::kSecond);
  std::vector<std::string> sent = numbered(3, "v");
  for (const std::string& s : sent) {
    w.eps[0]->cast(kGroup, Message::from_string(s));
  }
  // Casts are pending when the join lands: the membership cutover (flush,
  // new view) must barrier-flush them, not drop or reorder them.
  w.eps[2]->join(kGroup, w.eps[0]->address());
  w.sys.run_for(5 * sim::kSecond);
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()), sent);
  EXPECT_EQ(w.logs[0].casts_from(w.eps[0]->address()), sent);
  ASSERT_FALSE(w.logs[2].views.empty());
  EXPECT_EQ(w.logs[2].views.back().size(), 3u);
}

TEST(Pack, SendIsABarrierAndIsNeverPacked) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  o.stack.packing.max_count = 100;
  PackWorld w(2, kPackStack, o);
  w.eps[0]->cast(kGroup, Message::from_string("cast-first"));
  w.eps[0]->send(kGroup, {w.eps[1]->address()},
                 Message::from_string("point-to-point"));
  w.sys.run_for(sim::kSecond);
  // The pending cast was flushed by the send barrier; both arrive.
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()),
            std::vector<std::string>{"cast-first"});
  ASSERT_EQ(w.logs[1].sends.size(), 1u);
  EXPECT_EQ(w.logs[1].sends[0].payload, "point-to-point");
}

// -- corrupted trains --------------------------------------------------------

/// Transport that records every datagram instead of delivering it.
struct CaptureTransport final : Transport {
  std::vector<std::pair<Address, Bytes>> sent;
  void send(Address, Address dst, ByteSpan datagram) override {
    sent.emplace_back(dst, Bytes(datagram.begin(), datagram.end()));
  }
  std::vector<Bytes> to(Address dst) {
    std::vector<Bytes> out;
    for (auto& [d, bytes] : sent) {
      if (d == dst) out.push_back(bytes);
    }
    return out;
  }
};

TEST(Pack, CorruptTrainDropsTheWholeDatagramAndCountsIt) {
  sim::Scheduler sched;
  CaptureTransport net;
  StackConfig cfg;
  props::PropertySet p1 = props::make_set({props::Property::kBestEffort});
  Address a1{1}, a2{2};
  Endpoint tx(a1, cfg, layers::make_stack(kPackStack), p1, net, sched);
  Endpoint rx(a2, cfg, layers::make_stack(kPackStack), p1, net, sched);
  AppLog log;
  log.attach(rx);
  tx.install_view(kGroup, {a1, a2});
  rx.install_view(kGroup, {a1, a2});
  sched.run_for(10 * sim::kMillisecond);
  net.sent.clear();

  // Train 1, delivered intact: both casts come out.
  tx.cast(kGroup, Message::from_string("alpha-alpha"));
  tx.cast(kGroup, Message::from_string("bravo-bravo"));
  sched.run_for(10 * sim::kMillisecond);  // flush timer fires
  for (const Bytes& d : net.to(a2)) {
    rx.deliver_datagram(a1, std::make_shared<const Bytes>(d));
  }
  sched.run_for(10 * sim::kMillisecond);
  ASSERT_EQ(log.all_cast_payloads(),
            (std::vector<std::string>{"alpha-alpha", "bravo-bravo"}));

  // Train 2, corrupted in transit: truncate train content from the tail
  // and re-seal the COM crc32 trailer so corruption reaches PACK's frame
  // decoder rather than being caught below.
  net.sent.clear();
  PackStatsDelta base = PackStatsDelta::snap();
  tx.cast(kGroup, Message::from_string("charlie-charlie"));
  tx.cast(kGroup, Message::from_string("delta-delta"));
  sched.run_for(10 * sim::kMillisecond);
  std::vector<Bytes> train2 = net.to(a2);
  ASSERT_FALSE(train2.empty());
  for (Bytes d : train2) {
    ASSERT_GT(d.size(), 9u);
    d.resize(d.size() - 4 - 5);  // drop crc + 5 tail content bytes
    std::uint32_t crc = crc32(d);
    for (int i = 0; i < 4; ++i) {
      d.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    }
    rx.deliver_datagram(a1, std::make_shared<const Bytes>(std::move(d)));
  }
  sched.run_for(10 * sim::kMillisecond);
  PackStatsDelta d = base.since();
  EXPECT_EQ(d.corrupt_trains, 1u);
  EXPECT_EQ(d.casts_unpacked, 0u);
  // No partial delivery: neither element of the corrupt train leaks.
  EXPECT_EQ(log.all_cast_payloads(),
            (std::vector<std::string>{"alpha-alpha", "bravo-bravo"}));
  std::string dump = rx.dump(kGroup, "PACK");
  EXPECT_NE(dump.find("corrupt=1"), std::string::npos) << dump;
}

// -- batched send path -------------------------------------------------------

TEST(Pack, CastBatchDrivesOneTraversalPerBatch) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  // A stack whose top layers are batch-transparent transforms: the batch
  // survives the descent until COM transmits each event.
  PackWorld w(2, "CHKSUM:FRAG:NAK:COM", o);
  PackStatsDelta base = PackStatsDelta::snap();
  std::vector<std::string> sent = numbered(50, "b");
  std::vector<Message> msgs;
  msgs.reserve(sent.size());
  for (const std::string& s : sent) msgs.push_back(Message::from_string(s));
  w.eps[0]->cast_batch(kGroup, std::move(msgs));
  w.sys.run_for(sim::kSecond);
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()), sent);
  PackStatsDelta d = base.since();
  EXPECT_EQ(d.batch_descents, 1u);
  EXPECT_EQ(d.batched_events, 50u);
}

// -- contracts stay clean with packing on ------------------------------------

TEST(Pack, ContractCheckedPackedStackIsViolationFree) {
  HorusSystem::Options o;
  o.seed = 0xacce1u;
  o.check_contracts = true;
  o.net.loss = 0.05;
  o.net.duplicate = 0.03;
  PackWorld w(3, kPackOrdered, o);
  for (int round = 0; round < 20; ++round) {
    for (std::size_t i = 0; i < w.eps.size(); ++i) {
      w.eps[i]->cast(kGroup,
                     Message::from_string("r" + std::to_string(round)));
    }
    w.sys.run_for(40 * sim::kMillisecond);
  }
  w.sys.run_for(2 * sim::kSecond);
  ASSERT_FALSE(w.sys.monitors().empty());
  for (const auto& mon : w.sys.monitors()) {
    EXPECT_EQ(mon->total_violations(), 0u) << mon->summary();
  }
}

}  // namespace
}  // namespace horus::testing
