// STABLE, PINWHEEL and SAFE: the end-to-end stability machinery of
// Section 9 -- "the stability matrix thus reports a property that is
// completely defined by the application layer".
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

HorusSystem::Options fast_gossip() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  o.stack.stability_gossip_interval = 20 * sim::kMillisecond;
  o.stack.pinwheel_interval = 10 * sim::kMillisecond;
  return o;
}

TEST(Stable, AckPropagatesIntoMatrix) {
  World w(3, "STABLE:MBRSHIP:FRAG:NAK:COM", fast_gossip());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.eps[0]->cast(kGroup, Message::from_string("track me"));
  w.sys.run_for(sim::kSecond);
  // Everyone acks the message they received.
  for (std::size_t m = 0; m < 3; ++m) {
    ASSERT_FALSE(w.logs[m].casts.empty()) << "member " << m;
    w.eps[m]->ack(kGroup, w.logs[m].casts[0].source, w.logs[m].casts[0].msg_id);
  }
  w.sys.run_for(2 * sim::kSecond);
  // The sender eventually sees a stability matrix whose column for itself
  // has a fully-acked prefix of 1.
  ASSERT_FALSE(w.logs[0].stability.empty()) << "no STABLE upcall arrived";
  const StabilityMatrix& sm = w.logs[0].stability.back();
  auto rank = sm.view.rank_of(w.eps[0]->address());
  ASSERT_TRUE(rank.has_value());
  EXPECT_EQ(sm.stable_prefix()[*rank], 1u)
      << "message not reported stable:\n" << sm.to_string();
}

TEST(Stable, UnackedMessageStaysUnstable) {
  World w(3, "STABLE:MBRSHIP:FRAG:NAK:COM", fast_gossip());
  w.form_group();
  w.eps[0]->cast(kGroup, Message::from_string("never acked by 2"));
  w.sys.run_for(sim::kSecond);
  // Only members 0 and 1 ack; member 2 "has not processed" it.
  for (std::size_t m = 0; m < 2; ++m) {
    w.eps[m]->ack(kGroup, w.logs[m].casts[0].source, w.logs[m].casts[0].msg_id);
  }
  w.sys.run_for(2 * sim::kSecond);
  ASSERT_FALSE(w.logs[0].stability.empty());
  const StabilityMatrix& sm = w.logs[0].stability.back();
  auto rank = sm.view.rank_of(w.eps[0]->address());
  EXPECT_EQ(sm.stable_prefix()[*rank], 0u)
      << "stability must wait for ALL members' acks (end-to-end semantics)";
}

TEST(Stable, ApplicationDefinesSemantics) {
  // Acks may lag deliberately (e.g. "stable when logged to disk"): the
  // matrix advances exactly as far as the application says, no further.
  World w(2, "STABLE:MBRSHIP:FRAG:NAK:COM", fast_gossip());
  w.form_group();
  for (int i = 0; i < 10; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("m" + std::to_string(i)));
  }
  w.sys.run_for(sim::kSecond);
  ASSERT_EQ(w.logs[1].casts.size(), 10u);
  // Both members ack only the first 4 messages.
  for (std::size_t m = 0; m < 2; ++m) {
    for (int i = 0; i < 4; ++i) {
      w.eps[m]->ack(kGroup, w.logs[m].casts[static_cast<std::size_t>(i)].source,
                    w.logs[m].casts[static_cast<std::size_t>(i)].msg_id);
    }
  }
  w.sys.run_for(2 * sim::kSecond);
  ASSERT_FALSE(w.logs[0].stability.empty());
  const StabilityMatrix& sm = w.logs[0].stability.back();
  auto rank = sm.view.rank_of(w.eps[0]->address());
  EXPECT_EQ(sm.stable_prefix()[*rank], 4u);
}

TEST(Pinwheel, TokenCarriesStability) {
  World w(4, "PINWHEEL:MBRSHIP:FRAG:NAK:COM", fast_gossip());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.eps[1]->cast(kGroup, Message::from_string("around the wheel"));
  w.sys.run_for(sim::kSecond);
  for (std::size_t m = 0; m < 4; ++m) {
    ASSERT_FALSE(w.logs[m].casts.empty());
    w.eps[m]->ack(kGroup, w.logs[m].casts[0].source, w.logs[m].casts[0].msg_id);
  }
  // Give the token a few rotations.
  w.sys.run_for(3 * sim::kSecond);
  ASSERT_FALSE(w.logs[1].stability.empty()) << "no STABLE upcall from PINWHEEL";
  const StabilityMatrix& sm = w.logs[1].stability.back();
  auto rank = sm.view.rank_of(w.eps[1]->address());
  ASSERT_TRUE(rank.has_value());
  EXPECT_EQ(sm.stable_prefix()[*rank], 1u) << sm.to_string();
}

TEST(Pinwheel, SurvivesTokenDeathAtCrash) {
  World w(4, "PINWHEEL:MBRSHIP:FRAG:NAK:COM", fast_gossip());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.sys.crash(*w.eps[2]);
  w.sys.run_for(5 * sim::kSecond);
  // New view formed; stability machinery restarts.
  w.eps[0]->cast(kGroup, Message::from_string("post-crash"));
  w.sys.run_for(sim::kSecond);
  for (std::size_t m : {0u, 1u, 3u}) {
    auto& log = w.logs[m];
    ASSERT_FALSE(log.casts.empty());
    w.eps[m]->ack(kGroup, log.casts.back().source, log.casts.back().msg_id);
  }
  w.sys.run_for(3 * sim::kSecond);
  ASSERT_FALSE(w.logs[0].stability.empty());
  const StabilityMatrix& sm = w.logs[0].stability.back();
  EXPECT_EQ(sm.view.size(), 3u) << "matrix must cover the new view";
}

TEST(Pinwheel, FewerMessagesThanGossip) {
  // The PINWHEEL-vs-STABLE traffic trade-off (Section 10): one token
  // message per interval vs n gossip casts per interval.
  auto traffic = [](const std::string& spec) {
    HorusSystem::Options o = fast_gossip();
    // Same refresh interval for both mechanisms, so the comparison is
    // messages-per-refresh: one token hop vs n gossip multicasts.
    o.stack.pinwheel_interval = o.stack.stability_gossip_interval;
    World w(5, spec, o);
    w.form_group();
    // An active workload with immediate acks, so the stability machinery
    // actually carries information in both configurations.
    for (std::size_t m = 0; m < 5; ++m) {
      AppLog& log = w.logs[m];
      Endpoint* ep = w.eps[m];
      ep->on_upcall([&log, ep](Group& g, UpEvent& ev) {
        if (ev.type == UpType::kCast) {
          ep->ack(g.gid(), ev.source, ev.msg_id);
          log.casts.push_back({ev.source, ev.msg_id, ev.msg.payload_string()});
        }
      });
    }
    std::uint64_t before = 0;
    for (auto* ep : w.eps) before += ep->stack().stats().datagrams_sent;
    for (int i = 0; i < 20; ++i) {
      w.eps[static_cast<std::size_t>(i % 5)]->cast(kGroup,
                                                   Message::from_string("x"));
      w.sys.run_for(50 * sim::kMillisecond);
    }
    w.sys.run_for(4 * sim::kSecond);
    std::uint64_t after = 0;
    for (auto* ep : w.eps) after += ep->stack().stats().datagrams_sent;
    return after - before;
  };
  std::uint64_t stable = traffic("STABLE:MBRSHIP:FRAG:NAK:COM");
  std::uint64_t pinwheel = traffic("PINWHEEL:MBRSHIP:FRAG:NAK:COM");
  EXPECT_LT(pinwheel, stable)
      << "a rotating token should cost less than all-to-all gossip";
}

TEST(Safe, DeliversOnlyWhenStable) {
  // SAFE buffers messages until the stability layer below confirms all
  // members received them. With auto-acks from SAFE itself, messages flow,
  // but strictly later than through a plain stack.
  World w(3, "SAFE:STABLE:MBRSHIP:FRAG:NAK:COM", fast_gossip());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.eps[0]->cast(kGroup, Message::from_string("certified"));
  // Immediately after transport delivery the message must NOT yet have
  // been released by SAFE (stability needs a gossip round-trip).
  w.sys.run_for(5 * sim::kMillisecond);
  EXPECT_TRUE(w.logs[1].casts.empty());
  w.sys.run_for(3 * sim::kSecond);
  for (std::size_t m = 0; m < 3; ++m) {
    auto got = w.logs[m].casts_from(w.eps[0]->address());
    ASSERT_EQ(got.size(), 1u) << "member " << m;
    EXPECT_EQ(got[0], "certified");
  }
}

TEST(Safe, OrderPreservedPerSender) {
  World w(3, "SAFE:STABLE:MBRSHIP:FRAG:NAK:COM", fast_gossip());
  w.form_group();
  for (int i = 0; i < 10; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string(std::to_string(i)));
  }
  w.sys.run_for(5 * sim::kSecond);
  auto got = w.logs[2].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], std::to_string(i));
  }
}

TEST(Safe, ReleasesAtViewChange) {
  // A crash mid-stabilization: virtual synchrony makes the buffered
  // messages stable among survivors, so SAFE releases them with the view.
  World w(3, "SAFE:STABLE:MBRSHIP:FRAG:NAK:COM", fast_gossip());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.eps[0]->cast(kGroup, Message::from_string("in flight"));
  w.sys.run_for(5 * sim::kMillisecond);  // delivered below SAFE, not released
  w.sys.crash(*w.eps[2]);
  w.sys.run_for(8 * sim::kSecond);
  for (std::size_t m : {0u, 1u}) {
    auto got = w.logs[m].casts_from(w.eps[0]->address());
    ASSERT_EQ(got.size(), 1u) << "member " << m;
  }
}

}  // namespace
}  // namespace horus::testing
