// NNAK: the lightweight reliable-FIFO-unicast layer (Table 3: provides P3
// only; casts stay best-effort).
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

struct NnakWorld : World {
  explicit NnakWorld(std::size_t n, HorusSystem::Options o = {})
      : World(n, "NNAK:COM", o) {
    std::vector<Address> members;
    members.reserve(n);
    for (auto* ep : eps) members.push_back(ep->address());
    for (auto* ep : eps) {
      ep->join(kGroup);
      ep->install_view(kGroup, members);
    }
    sys.run_for(10 * sim::kMillisecond);
  }
};

TEST(Nnak, UnicastReliableFifoUnderLoss) {
  HorusSystem::Options o;
  o.net.loss = 0.3;
  NnakWorld w(2, o);
  for (int i = 0; i < 50; ++i) {
    w.eps[0]->send(kGroup, {w.eps[1]->address()},
                   Message::from_string(std::to_string(i)));
  }
  w.sys.run_for(10 * sim::kSecond);
  ASSERT_EQ(w.logs[1].sends.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(w.logs[1].sends[static_cast<std::size_t>(i)].payload,
              std::to_string(i));
  }
}

TEST(Nnak, CastsStayBestEffort) {
  // With total loss, casts silently vanish (P1 semantics); NNAK neither
  // recovers nor reorders them.
  HorusSystem::Options o;
  o.net.loss = 1.0;
  NnakWorld w(2, o);
  for (int i = 0; i < 10; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("gone"));
  }
  w.sys.run_for(2 * sim::kSecond);
  EXPECT_TRUE(w.logs[1].casts.empty());
}

TEST(Nnak, CastsDeliveredWhenNetworkClean) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  NnakWorld w(2, o);
  w.eps[0]->cast(kGroup, Message::from_string("hi"));
  w.sys.run_for(sim::kSecond);
  ASSERT_EQ(w.logs[1].casts.size(), 1u);
  EXPECT_EQ(w.logs[1].casts[0].payload, "hi");
}

TEST(Nnak, IndependentPerPeerStreams) {
  HorusSystem::Options o;
  o.net.loss = 0.2;
  NnakWorld w(3, o);
  for (int i = 0; i < 20; ++i) {
    w.eps[0]->send(kGroup, {w.eps[1]->address()},
                   Message::from_string("to1-" + std::to_string(i)));
    w.eps[0]->send(kGroup, {w.eps[2]->address()},
                   Message::from_string("to2-" + std::to_string(i)));
  }
  w.sys.run_for(10 * sim::kSecond);
  ASSERT_EQ(w.logs[1].sends.size(), 20u);
  ASSERT_EQ(w.logs[2].sends.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(w.logs[1].sends[static_cast<std::size_t>(i)].payload,
              "to1-" + std::to_string(i));
    EXPECT_EQ(w.logs[2].sends[static_cast<std::size_t>(i)].payload,
              "to2-" + std::to_string(i));
  }
}

TEST(Nnak, BidirectionalStreams) {
  HorusSystem::Options o;
  o.net.loss = 0.15;
  NnakWorld w(2, o);
  for (int i = 0; i < 25; ++i) {
    w.eps[0]->send(kGroup, {w.eps[1]->address()},
                   Message::from_string("a" + std::to_string(i)));
    w.eps[1]->send(kGroup, {w.eps[0]->address()},
                   Message::from_string("b" + std::to_string(i)));
  }
  w.sys.run_for(10 * sim::kSecond);
  EXPECT_EQ(w.logs[1].sends.size(), 25u);
  EXPECT_EQ(w.logs[0].sends.size(), 25u);
}

TEST(Nnak, OneShotLossRecovered) {
  // The same one-shot blind spot NAK had: a single lost unicast with no
  // follow-up traffic must still be repaired via the periodic status.
  HorusSystem::Options o;
  o.net.loss = 0.0;
  NnakWorld w(2, o);
  sim::LinkParams dead;
  dead.loss = 1.0;
  w.sys.net().set_link_params(w.eps[0]->address().id, w.eps[1]->address().id, dead);
  w.eps[0]->send(kGroup, {w.eps[1]->address()}, Message::from_string("solo"));
  w.sys.run_for(5 * sim::kMillisecond);
  w.sys.net().clear_link_params(w.eps[0]->address().id, w.eps[1]->address().id);
  w.sys.run_for(3 * sim::kSecond);
  ASSERT_EQ(w.logs[1].sends.size(), 1u);
  EXPECT_EQ(w.logs[1].sends[0].payload, "solo");
}

}  // namespace
}  // namespace horus::testing
