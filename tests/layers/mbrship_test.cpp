// MBRSHIP layer unit behaviours beyond the Figure 2 scenario: joins,
// view agreement, self-inclusion, coordinator identity, external failure
// detection, gossip-driven log pruning, deferred casts.
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

HorusSystem::Options quiet() {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  return o;
}

TEST(Mbrship, BootstrapSingletonView) {
  World w(1, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.eps[0]->join(kGroup);
  w.sys.run_for(100 * sim::kMillisecond);
  ASSERT_EQ(w.logs[0].views.size(), 1u);
  EXPECT_EQ(w.logs[0].views[0].size(), 1u);
  EXPECT_EQ(w.logs[0].views[0].oldest(), w.eps[0]->address());
}

TEST(Mbrship, SingletonCanCastToItself) {
  World w(1, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.eps[0]->join(kGroup);
  w.sys.run_for(100 * sim::kMillisecond);
  w.eps[0]->cast(kGroup, Message::from_string("solo"));
  w.sys.run_for(sim::kSecond);
  ASSERT_EQ(w.logs[0].casts.size(), 1u);
  EXPECT_EQ(w.logs[0].casts[0].payload, "solo");
}

TEST(Mbrship, JoinersAppendInSeniorityOrder) {
  World w(4, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  const View& v = w.logs[3].views.back();
  // The bootstrap member is oldest; joiners follow in join order.
  EXPECT_EQ(v.member(0), w.eps[0]->address());
  EXPECT_EQ(v.member(1), w.eps[1]->address());
  EXPECT_EQ(v.member(2), w.eps[2]->address());
  EXPECT_EQ(v.member(3), w.eps[3]->address());
}

TEST(Mbrship, EveryViewContainsInstaller) {
  World w(4, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  w.sys.crash(*w.eps[2]);
  w.sys.run_for(5 * sim::kSecond);
  for (std::size_t i : {0u, 1u, 3u}) {
    for (const View& v : w.logs[i].views) {
      EXPECT_TRUE(v.contains(w.eps[i]->address()))
          << "member " << i << " installed a view without itself: "
          << v.to_string();
    }
  }
}

TEST(Mbrship, ViewSequencesAgreeAcrossMembers) {
  World w(4, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  w.sys.crash(*w.eps[3]);
  w.sys.run_for(5 * sim::kSecond);
  // Any two members' view histories must agree wherever their view seqs
  // overlap (view agreement).
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a + 1; b < 3; ++b) {
      for (const View& va : w.logs[a].views) {
        for (const View& vb : w.logs[b].views) {
          if (va.id().seq == vb.id().seq) {
            EXPECT_EQ(va, vb) << "members " << a << " and " << b
                              << " disagree at seq " << va.id().seq;
          }
        }
      }
    }
  }
}

TEST(Mbrship, ExternalFailureDetectorDrivesFlush) {
  // Section 5: "it allows for external failure detection". No crash
  // happens; the application simply declares a member faulty.
  World w(3, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.eps[0]->flush(kGroup, {w.eps[2]->address()});
  w.sys.run_for(3 * sim::kSecond);
  EXPECT_EQ(w.logs[0].views.back().size(), 2u);
  EXPECT_FALSE(w.logs[0].views.back().contains(w.eps[2]->address()));
  // The excluded (but alive) member learns it was dropped.
  EXPECT_EQ(w.logs[2].exits, 1);
}

TEST(Mbrship, FlushUpcallReachesApplication) {
  World w(3, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  w.sys.crash(*w.eps[2]);
  w.sys.run_for(5 * sim::kSecond);
  EXPECT_GT(w.logs[0].flushes + w.logs[1].flushes, 0)
      << "surviving members should see the FLUSH upcall";
}

TEST(Mbrship, CastsDuringFlushAreDeferredNotLost) {
  World w(3, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  // Freeze delivery of the flush by partitioning briefly; casts issued
  // while membership is unsettled must still come out the other side.
  w.sys.crash(*w.eps[2]);
  // Cast immediately -- the flush has not even started yet, then more
  // during it.
  for (int i = 0; i < 5; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("d" + std::to_string(i)));
    w.sys.run_for(100 * sim::kMillisecond);
  }
  w.sys.run_for(5 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], "d" + std::to_string(i));
  }
}

TEST(Mbrship, GossipPrunesUnstableLog) {
  HorusSystem::Options o = quiet();
  o.stack.stability_gossip_interval = 20 * sim::kMillisecond;
  World w(3, "MBRSHIP:FRAG:NAK:COM", o);
  w.form_group();
  for (int i = 0; i < 50; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string("fill"));
  }
  w.sys.run_for(3 * sim::kSecond);
  // After everyone delivered everything and gossip has circulated, the
  // unstable log must have been pruned (dump reports my_vseq=50 but the
  // flush log should not hold 50 entries' worth -- approximated via dump).
  std::string d = w.eps[0]->dump(kGroup, "MBRSHIP");
  EXPECT_NE(d.find("my_vseq=50"), std::string::npos) << d;
  // Force a flush now: it must be cheap (nothing unstable to exchange).
  w.sys.crash(*w.eps[2]);
  w.sys.run_for(5 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  EXPECT_EQ(got.size(), 50u) << "no duplicates from the flush";
}

TEST(Mbrship, TwoSimultaneousCrashes) {
  World w(5, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  w.sys.crash(*w.eps[2]);
  w.sys.crash(*w.eps[4]);
  w.sys.run_for(8 * sim::kSecond);
  for (std::size_t i : {0u, 1u, 3u}) {
    const View& v = w.logs[i].views.back();
    EXPECT_EQ(v.size(), 3u) << "member " << i;
    EXPECT_FALSE(v.contains(w.eps[2]->address()));
    EXPECT_FALSE(v.contains(w.eps[4]->address()));
  }
}

TEST(Mbrship, CrashDuringFlushRestartsIt) {
  // The coordinator's crash mid-flush: the next-oldest member completes
  // the membership change. "If processes fail during the process, a new
  // round of the flush protocol may start up immediately."
  World w(4, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  // Crash member 3, and almost immediately the coordinator (member 0),
  // which will be mid-flush.
  w.sys.crash(*w.eps[3]);
  w.sys.run_for(300 * sim::kMillisecond);  // suspicion fires, flush starts
  w.sys.crash(*w.eps[0]);
  w.sys.run_for(8 * sim::kSecond);
  for (std::size_t i : {1u, 2u}) {
    const View& v = w.logs[i].views.back();
    EXPECT_EQ(v.size(), 2u) << "member " << i << ": " << v.to_string();
    EXPECT_EQ(v.oldest(), w.eps[1]->address());
  }
  EXPECT_EQ(w.logs[1].views.back(), w.logs[2].views.back());
}

TEST(Mbrship, SpuriousSenderFiltered) {
  // A non-member blasting DATA casts at the group must not reach the app
  // ("filters out spurious messages from endpoints not in its view").
  World w(3, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  ASSERT_TRUE(w.converged());
  // The outsider runs the same stack and force-installs a view that
  // includes the group members -- then casts without having joined.
  auto& outsider = w.sys.create_endpoint("MBRSHIP:FRAG:NAK:COM");
  outsider.join(kGroup);  // bootstraps its own singleton view of the gid
  // Hack its view to aim datagrams at the real members:
  outsider.install_view(kGroup, {outsider.address(), w.eps[0]->address(),
                                 w.eps[1]->address()});
  outsider.cast(kGroup, Message::from_string("intrusion"));
  w.sys.run_for(2 * sim::kSecond);
  for (std::size_t i = 0; i < 3; ++i) {
    for (const auto& d : w.logs[i].casts) {
      EXPECT_NE(d.payload, "intrusion") << "member " << i;
    }
  }
}

TEST(Mbrship, RejoinAfterExclusion) {
  World w(3, "MBRSHIP:FRAG:NAK:COM", quiet());
  w.form_group();
  // Falsely exclude member 2 via the external detector, then let it
  // rejoin: it must come back as the youngest member.
  w.eps[0]->flush(kGroup, {w.eps[2]->address()});
  w.sys.run_for(3 * sim::kSecond);
  ASSERT_EQ(w.logs[2].exits, 1);
  w.eps[2]->join(kGroup, w.eps[0]->address());
  w.sys.run_for(3 * sim::kSecond);
  const View& v = w.logs[0].views.back();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.member(2), w.eps[2]->address()) << "rejoiner is youngest";
}

}  // namespace
}  // namespace horus::testing
