// NAK layer: FIFO under loss/reordering/duplication, retransmission via
// negative acknowledgements, window flow control, LOST_MESSAGE
// placeholders, failure suspicion, and epoch handling across views.
#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

struct NakWorld : World {
  explicit NakWorld(std::size_t n, HorusSystem::Options o = {})
      : World(n, "NAK:COM", o) {
    std::vector<Address> members;
    members.reserve(n);
    for (auto* ep : eps) members.push_back(ep->address());
    for (auto* ep : eps) {
      ep->join(kGroup);
      ep->install_view(kGroup, members);
    }
    sys.run_for(10 * sim::kMillisecond);
  }
};

TEST(Nak, FifoUnderHeavyLoss) {
  HorusSystem::Options o;
  o.net.loss = 0.35;
  o.seed = 2024;
  NakWorld w(2, o);
  for (int i = 0; i < 100; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string(std::to_string(i)));
  }
  w.sys.run_for(10 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], std::to_string(i));
}

TEST(Nak, NoDuplicatesUnderNetworkDuplication) {
  HorusSystem::Options o;
  o.net.duplicate = 0.5;
  NakWorld w(2, o);
  for (int i = 0; i < 50; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string(std::to_string(i)));
  }
  w.sys.run_for(3 * sim::kSecond);
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()).size(), 50u);
}

TEST(Nak, FifoUnderReordering) {
  HorusSystem::Options o;
  o.net.delay_min = 10;
  o.net.delay_max = 2000;  // wide jitter: heavy reordering
  NakWorld w(2, o);
  for (int i = 0; i < 60; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string(std::to_string(i)));
  }
  w.sys.run_for(5 * sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 60u);
  for (int i = 0; i < 60; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], std::to_string(i));
}

TEST(Nak, MulticastFifoAcrossManyReceivers) {
  HorusSystem::Options o;
  o.net.loss = 0.15;
  NakWorld w(5, o);
  for (int i = 0; i < 40; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string(std::to_string(i)));
  }
  w.sys.run_for(8 * sim::kSecond);
  for (std::size_t m = 1; m < 5; ++m) {
    auto got = w.logs[m].casts_from(w.eps[0]->address());
    ASSERT_EQ(got.size(), 40u) << "member " << m;
    for (int i = 0; i < 40; ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(i)], std::to_string(i));
    }
  }
}

TEST(Nak, SubsetSendsReliableFifo) {
  HorusSystem::Options o;
  o.net.loss = 0.25;
  NakWorld w(3, o);
  for (int i = 0; i < 30; ++i) {
    w.eps[0]->send(kGroup, {w.eps[2]->address()},
                   Message::from_string("s" + std::to_string(i)));
  }
  w.sys.run_for(8 * sim::kSecond);
  ASSERT_EQ(w.logs[2].sends.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(w.logs[2].sends[static_cast<std::size_t>(i)].payload,
              "s" + std::to_string(i));
  }
  EXPECT_TRUE(w.logs[1].sends.empty());
}

TEST(Nak, FlowControlBoundsOutstanding) {
  // With a tiny window and a receiver that exists but acks slowly (high
  // status interval), a burst must be trickled out, never exceeding the
  // window of unacked casts in flight.
  HorusSystem::Options o;
  o.net.loss = 0.0;
  o.stack.nak_window = 8;
  NakWorld w(2, o);
  for (int i = 0; i < 100; ++i) {
    w.eps[0]->cast(kGroup, Message::from_string(std::to_string(i)));
  }
  // Immediately after the burst, at most window casts have been sent (each
  // cast = 2 datagrams for the 2-member view, plus a handful of controls).
  const StackStats& s = w.eps[0]->stack().stats();
  EXPECT_LE(s.datagrams_sent, (8 + 2) * 2 + 10);
  w.sys.run_for(10 * sim::kSecond);
  EXPECT_EQ(w.logs[1].casts_from(w.eps[0]->address()).size(), 100u)
      << "the queue must drain as acks arrive";
}

TEST(Nak, LostMessagePlaceholderOnBufferOverflow) {
  // Force the retransmit buffer to evict entries, then have the receiver
  // NAK one of them: it must get a placeholder -> LOST_MESSAGE, and the
  // stream must keep going (no stall).
  HorusSystem::Options o;
  o.net.loss = 0.0;
  o.stack.nak_max_retain = 4;       // tiny retransmit buffer
  o.stack.nak_window = 1024;        // don't let flow control save us
  HorusSystem sys(o);
  auto& a = sys.create_endpoint("NAK:COM");
  auto& b = sys.create_endpoint("NAK:COM");
  AppLog la, lb;
  la.attach(a);
  lb.attach(b);
  std::vector<Address> members = {a.address(), b.address()};
  a.join(kGroup);
  a.install_view(kGroup, members);
  // b joins late and with the first casts force-dropped: the link starts
  // dead, then heals -- by then a's buffer has evicted the early casts.
  b.join(kGroup);
  b.install_view(kGroup, members);
  sim::LinkParams dead;
  dead.loss = 1.0;
  sys.net().set_link_params(a.address().id, b.address().id, dead);
  for (int i = 0; i < 20; ++i) {
    a.cast(kGroup, Message::from_string(std::to_string(i)));
  }
  sys.run_for(100 * sim::kMillisecond);
  sys.net().clear_link_params(a.address().id, b.address().id);
  sys.run_for(5 * sim::kSecond);
  EXPECT_GT(lb.lost.size(), 0u) << "expected LOST_MESSAGE placeholders";
  EXPECT_GT(lb.casts.size(), 0u) << "tail casts must still arrive";
  EXPECT_EQ(lb.lost.size() + lb.casts.size(), 20u)
      << "every sequence number accounted for: delivered or reported lost";
}

TEST(Nak, ProblemUpcallOnSilence) {
  HorusSystem::Options o;
  o.net.loss = 0.0;
  NakWorld w(2, o);
  w.sys.run_for(100 * sim::kMillisecond);
  w.sys.crash(*w.eps[1]);
  w.sys.run_for(2 * sim::kSecond);
  ASSERT_FALSE(w.logs[0].problems.empty())
      << "silent member must be reported via PROBLEM";
  EXPECT_EQ(w.logs[0].problems[0], w.eps[1]->address());
}

TEST(Nak, NoProblemWhileChatting) {
  HorusSystem::Options o;
  o.net.loss = 0.05;
  NakWorld w(3, o);
  for (int r = 0; r < 20; ++r) {
    w.eps[0]->cast(kGroup, Message::from_string("tick"));
    w.sys.run_for(100 * sim::kMillisecond);
  }
  EXPECT_TRUE(w.logs[0].problems.empty());
  EXPECT_TRUE(w.logs[1].problems.empty());
}

TEST(Nak, EpochResetOnViewChange) {
  // After a view change the cast stream restarts at 1 in the new epoch;
  // a member that joins in the new view receives only new-view casts.
  HorusSystem::Options o;
  o.net.loss = 0.0;
  NakWorld w(2, o);
  w.eps[0]->cast(kGroup, Message::from_string("old-epoch"));
  w.sys.run_for(100 * sim::kMillisecond);
  // Install a new view (epoch bump) on both members.
  std::vector<Address> members = {w.eps[0]->address(), w.eps[1]->address()};
  w.eps[0]->install_view(kGroup, members);
  w.eps[1]->install_view(kGroup, members);
  w.sys.run_for(100 * sim::kMillisecond);
  w.eps[0]->cast(kGroup, Message::from_string("new-epoch"));
  w.sys.run_for(sim::kSecond);
  auto got = w.logs[1].casts_from(w.eps[0]->address());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], "new-epoch");
}

TEST(Nak, ManySendersInterleaved) {
  HorusSystem::Options o;
  o.net.loss = 0.1;
  NakWorld w(4, o);
  for (int i = 0; i < 25; ++i) {
    for (std::size_t m = 0; m < 4; ++m) {
      w.eps[m]->cast(kGroup, Message::from_string(
                                 "m" + std::to_string(m) + "-" + std::to_string(i)));
    }
  }
  w.sys.run_for(10 * sim::kSecond);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t m = 0; m < 4; ++m) {
      auto got = w.logs[r].casts_from(w.eps[m]->address());
      ASSERT_EQ(got.size(), 25u) << "receiver " << r << " sender " << m;
      for (int i = 0; i < 25; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)],
                  "m" + std::to_string(m) + "-" + std::to_string(i));
      }
    }
  }
}

}  // namespace
}  // namespace horus::testing
