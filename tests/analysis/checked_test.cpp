// HCPI contract checking: CheckedLayer + ContractMonitor.
//
// Two halves: (1) layers deliberately violating the HCPI discipline are
// caught, with the right counter attributed; (2) the real layer library,
// run under full fault injection (loss, duplication, corruption, crashes,
// partitions), reports ZERO violations -- the monitor is a tripwire, not
// a noise source.
#include "../common/test_util.hpp"

#include <memory>
#include <vector>

#include "horus/analysis/checked.hpp"

namespace horus::testing {
namespace {

using analysis::ContractMonitor;

props::PropertySet p1() {
  return props::make_set({props::Property::kBestEffort});
}

LayerInfo passthrough_info(const char* name) {
  LayerInfo li;
  li.name = name;
  li.fields = {{"x", 32}};
  li.spec.name = name;
  li.spec.inherits = props::kAllProperties;
  return li;
}

/// Pushes its header twice on every outgoing message (balance violation).
class DoublePusher final : public Layer {
 public:
  DoublePusher() : info_(passthrough_info("DOUBLEPUSH")) {}
  const LayerInfo& info() const override { return info_; }
  void down(Group& g, DownEvent& ev) override {
    if (ev.type == DownType::kCast || ev.type == DownType::kSend) {
      std::uint64_t fields[] = {1};
      stack().push_header(ev.msg, *this, fields);
      stack().push_header(ev.msg, *this, fields);
    }
    pass_down(g, ev);
  }
  void up(Group& g, UpEvent& ev) override {
    if (ev.type == UpType::kCast || ev.type == UpType::kSend) {
      (void)stack().pop_header(ev.msg, *this);
      (void)stack().pop_header(ev.msg, *this);
    }
    pass_up(g, ev);
  }

 private:
  LayerInfo info_;
};

/// Touches the message again after forwarding it (use-after-forward).
class LateToucher final : public Layer {
 public:
  LateToucher() : info_(passthrough_info("LATETOUCH")) {}
  const LayerInfo& info() const override { return info_; }
  void down(Group& g, DownEvent& ev) override {
    bool data = ev.type == DownType::kCast || ev.type == DownType::kSend;
    if (data) {
      std::uint64_t fields[] = {7};
      stack().push_header(ev.msg, *this, fields);
    }
    pass_down(g, ev);
    if (data) {
      std::uint64_t late[] = {8};
      stack().push_header(ev.msg, *this, late);  // message no longer ours
    }
  }
  void up(Group& g, UpEvent& ev) override {
    if (ev.type == UpType::kCast || ev.type == UpType::kSend) {
      (void)stack().pop_header(ev.msg, *this);
    }
    pass_up(g, ev);
  }

 private:
  LayerInfo info_;
};

/// Forwards its entry event twice (use-after-forward).
class DoubleForwarder final : public Layer {
 public:
  DoubleForwarder() : info_(passthrough_info("DOUBLEFWD")) {
    info_.fields.clear();
  }
  const LayerInfo& info() const override { return info_; }
  void down(Group& g, DownEvent& ev) override {
    pass_down(g, ev);
    if (ev.type == DownType::kCast) pass_down(g, ev);
  }

 private:
  LayerInfo info_;
};

/// Declares {CAST, SEND} but originates a PROBLEM upcall (undeclared).
class UndeclaredEmitter final : public Layer {
 public:
  UndeclaredEmitter() : info_(passthrough_info("UNDECL")) {
    info_.fields.clear();
    info_.up_emits = make_up_emits({UpType::kCast, UpType::kSend});
  }
  const LayerInfo& info() const override { return info_; }
  void up(Group& g, UpEvent& ev) override {
    if (ev.type == UpType::kCast) {
      UpEvent problem;
      problem.type = UpType::kProblem;
      problem.source = ev.source;
      pass_up(g, problem);
    }
    pass_up(g, ev);
  }

 private:
  LayerInfo info_;
};

/// One endpoint over the sim network, with a hand-built (possibly
/// misbehaving) layer stack wrapped in CheckedLayers. A self-only view
/// makes COM loop every cast back through the receive path.
struct CheckedWorld {
  sim::Scheduler sched;
  sim::SimNetwork net{sched, 99};
  SimTransport transport{net};
  std::shared_ptr<ContractMonitor> mon = std::make_shared<ContractMonitor>();
  std::unique_ptr<Endpoint> ep;

  explicit CheckedWorld(std::unique_ptr<Layer> bad) {
    sim::LinkParams quiet;
    quiet.loss = 0.0;
    net.set_default_params(quiet);
    std::vector<std::unique_ptr<Layer>> layers;
    layers.push_back(std::move(bad));
    layers.push_back(layers::make_layer("COM"));
    ep = std::make_unique<Endpoint>(Address{7}, StackConfig{},
                                    analysis::wrap_checked(std::move(layers), mon),
                                    p1(), transport, sched);
    ep->stack().set_monitor(mon.get());
    transport.bind(*ep);
    ep->join(kGroup);
    ep->install_view(kGroup, {ep->address()});
    run();
  }

  void run() { sched.run_until(sched.now() + 200 * sim::kMillisecond); }

  std::uint64_t cast_and_count(std::atomic<std::uint64_t>& counter) {
    std::uint64_t before = counter.load();
    ep->cast(kGroup, Message::from_string("probe"));
    run();
    return counter.load() - before;
  }
};

TEST(Checked, DoublePushAndPopAreCounted) {
  CheckedWorld w(std::make_unique<DoublePusher>());
  auto& c = const_cast<ContractMonitor::Counters&>(w.mon->counters());
  EXPECT_GE(w.cast_and_count(c.push_pop), 2u)  // one per direction
      << w.mon->summary();
  EXPECT_EQ(w.mon->counters().use_after_forward.load(), 0u)
      << w.mon->summary();
}

TEST(Checked, PushAfterForwardIsUseAfterForward) {
  CheckedWorld w(std::make_unique<LateToucher>());
  auto& c = const_cast<ContractMonitor::Counters&>(w.mon->counters());
  EXPECT_GE(w.cast_and_count(c.use_after_forward), 1u) << w.mon->summary();
}

TEST(Checked, ForwardingEntryEventTwiceIsCounted) {
  CheckedWorld w(std::make_unique<DoubleForwarder>());
  auto& c = const_cast<ContractMonitor::Counters&>(w.mon->counters());
  EXPECT_GE(w.cast_and_count(c.use_after_forward), 1u) << w.mon->summary();
}

TEST(Checked, UndeclaredEmissionIsCounted) {
  CheckedWorld w(std::make_unique<UndeclaredEmitter>());
  auto& c = const_cast<ContractMonitor::Counters&>(w.mon->counters());
  EXPECT_GE(w.cast_and_count(c.undeclared_event), 1u) << w.mon->summary();
  // The violation message names the layer and the upcall type.
  bool named = false;
  for (const std::string& m : w.mon->messages()) {
    if (m.find("UNDECL") != std::string::npos &&
        m.find("PROBLEM") != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named) << w.mon->summary();
}

TEST(Checked, ReentrantDownFromDeliveryUpcall) {
  // The monitor rule itself: a down() crossing that starts while a
  // delivery upcall is on the stack is re-entrant. (Under the executors
  // the post() discipline makes this unreachable from app code, which is
  // exactly what the rule enforces.)
  CheckedWorld w(std::make_unique<UndeclaredEmitter>());
  Group* g = w.ep->find_group(kGroup);
  ASSERT_NE(g, nullptr);
  UpEvent delivery;
  delivery.type = UpType::kCast;
  w.mon->on_app_up_begin(*g, delivery);
  DownEvent reentrant;
  reentrant.type = DownType::kCast;
  w.mon->on_forward_down(*g, HcpiMonitor::kAppSinkIndex, reentrant);
  w.mon->on_app_up_end(*g);
  EXPECT_EQ(w.mon->counters().reentrancy.load(), 1u) << w.mon->summary();
}

// -- the real layer library is contract-clean under fault injection ----------

HorusSystem::Options faulty(unsigned seed) {
  HorusSystem::Options o;
  o.seed = seed;
  o.check_contracts = true;
  o.net.loss = 0.05;
  o.net.duplicate = 0.03;
  o.net.corrupt = 0.01;
  return o;
}

void expect_clean(const HorusSystem& sys_unused, World& w) {
  (void)sys_unused;
  for (const auto& mon : w.sys.monitors()) {
    EXPECT_EQ(mon->total_violations(), 0u) << mon->summary();
  }
  EXPECT_FALSE(w.sys.monitors().empty());
}

TEST(Checked, FullStackCleanUnderFaultInjection) {
  World w(3, "TOTAL:MBRSHIP:FRAG:NAK:COM", faulty(0xfau));
  w.form_group();
  for (int round = 0; round < 20; ++round) {
    for (std::size_t i = 0; i < w.eps.size(); ++i) {
      w.eps[i]->cast(kGroup, Message::from_string("m" + std::to_string(round)));
    }
    w.sys.run_for(40 * sim::kMillisecond);
  }
  // Large messages drive FRAG's chunked path.
  w.eps[0]->cast(kGroup, Message::from_string(std::string(64 * 1024, 'x')));
  w.sys.run_for(2 * sim::kSecond);
  // Crash a member mid-traffic: failure detection, flush and a new view.
  w.sys.crash(*w.eps[2]);
  for (int round = 0; round < 10; ++round) {
    w.eps[0]->cast(kGroup, Message::from_string("after-crash"));
    w.sys.run_for(100 * sim::kMillisecond);
  }
  w.sys.run_for(2 * sim::kSecond);
  expect_clean(w.sys, w);
}

TEST(Checked, PartitionHealCleanWithMergeStack) {
  World w(4, "MERGE:MBRSHIP:FRAG:NAK:COM", faulty(0x7u));
  w.form_group();
  w.sys.partition({{w.eps[0], w.eps[1]}, {w.eps[2], w.eps[3]}});
  for (int round = 0; round < 5; ++round) {
    w.eps[0]->cast(kGroup, Message::from_string("left"));
    w.eps[2]->cast(kGroup, Message::from_string("right"));
    w.sys.run_for(200 * sim::kMillisecond);
  }
  w.sys.heal();
  w.sys.run_for(5 * sim::kSecond);
  expect_clean(w.sys, w);
}

TEST(Checked, TransformAndOrderingStacksClean) {
  World w(3, "CAUSAL:ENCRYPT:MBRSHIP:COMPRESS:FRAG:NAK:CHKSUM:RAWCOM",
          faulty(0x33u));
  w.form_group();
  for (int round = 0; round < 15; ++round) {
    for (std::size_t i = 0; i < w.eps.size(); ++i) {
      w.eps[i]->cast(kGroup,
                     Message::from_string(std::string(300, 'a' + (round % 26))));
    }
    w.sys.run_for(50 * sim::kMillisecond);
  }
  w.sys.run_for(2 * sim::kSecond);
  expect_clean(w.sys, w);
}

}  // namespace
}  // namespace horus::testing
