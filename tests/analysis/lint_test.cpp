// horus-lint engine: every class of ill-formed stack is detected with the
// offending layer named, fix suggestions point at real insertions, and the
// warning rules (redundant layer, dead guarantee) fire on stacks built to
// trip them.
#include <gtest/gtest.h>

#include <stdexcept>

#include "horus/analysis/lint.hpp"
#include "horus/api/system.hpp"
#include "horus/layers/registry.hpp"

namespace horus::analysis {
namespace {

using props::Property;

const LintDiagnostic* find_rule(const LintReport& rep, const std::string& rule) {
  for (const LintDiagnostic& d : rep.diagnostics) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

// -- table-driven: each class of ill-formed stack ----------------------------

struct BadSpecCase {
  const char* spec;
  const char* rule;        // expected diagnostic rule id
  const char* layer;       // expected offending layer name ("" = whole stack)
  std::size_t index;       // expected top-to-bottom position
};

class IllFormedSpecs : public ::testing::TestWithParam<BadSpecCase> {};

TEST_P(IllFormedSpecs, NamesTheOffendingLayer) {
  const BadSpecCase& c = GetParam();
  LintReport rep = lint_spec(c.spec);
  EXPECT_FALSE(rep.ok()) << rep.to_string();
  const LintDiagnostic* d = find_rule(rep, c.rule);
  ASSERT_NE(d, nullptr) << "expected rule " << c.rule << " in:\n"
                        << rep.to_string();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->layer, c.layer) << rep.to_string();
  EXPECT_EQ(d->index, c.index) << rep.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Lint, IllFormedSpecs,
    ::testing::Values(
        // Missing requirement: FRAG needs FIFO (P3,P4) under it.
        BadSpecCase{"FRAG:COM", "missing-requirement", "FRAG", 0},
        BadSpecCase{"TOTAL:FRAG:COM", "missing-requirement", "FRAG", 1},
        // Missing requirement at the top: TOTAL over plain reliable FIFO.
        BadSpecCase{"TOTAL:NAK:COM", "missing-requirement", "TOTAL", 0},
        // Unknown layer name (with did-you-mean, asserted below).
        BadSpecCase{"TOTALL:COM", "unknown-layer", "TOTALL", 0},
        // Transport misplacement, both directions.
        BadSpecCase{"COM:NAK", "transport-placement", "COM", 0},
        BadSpecCase{"NAK:COM:COM", "transport-placement", "COM", 1},
        // PACK placement: below an ordering layer a train of casts would
        // ride one ordering stamp; without FRAG below, a full train plus
        // lower headers can exceed the MTU.
        BadSpecCase{"TOTAL:PACK:MBRSHIP:FRAG:NAK:COM", "pack-below-ordering",
                    "PACK", 1},
        BadSpecCase{"PACK:NAK:COM", "pack-needs-frag", "PACK", 0},
        // Syntactic problems.
        BadSpecCase{"TOTAL::COM", "empty-name", "", 1},
        BadSpecCase{"", "empty-spec", "",
                    LintDiagnostic::kWholeStack}));

// -- diagnostics carry actionable fix suggestions ----------------------------

TEST(Lint, MissingRequirementSuggestsInsertion) {
  LintReport rep = lint_spec("TOTAL:NAK:COM");
  const LintDiagnostic* d = find_rule(rep, "missing-requirement");
  ASSERT_NE(d, nullptr);
  // TOTAL needs virtual synchrony: the minimal-stack search must propose
  // inserting a membership layer below it.
  EXPECT_NE(d->suggestion.find("insert"), std::string::npos) << d->suggestion;
  EXPECT_NE(d->suggestion.find("below TOTAL"), std::string::npos)
      << d->suggestion;
}

TEST(Lint, UnknownLayerSuggestsClosestName) {
  LintReport rep = lint_spec("TOTALL:COM");
  const LintDiagnostic* d = find_rule(rep, "unknown-layer");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->suggestion, "did you mean TOTAL?");
}

TEST(Lint, StructuredOffenderInStackCheck) {
  // The algebra itself reports the offender index and missing set, so
  // tooling does not parse error strings.
  auto rows = std::vector<props::LayerSpec>{
      layers::layer_spec("TOTAL"), layers::layer_spec("NAK"),
      layers::layer_spec("COM")};
  props::StackCheck chk =
      props::check_stack(rows, props::make_set({Property::kBestEffort}));
  ASSERT_FALSE(chk.well_formed);
  ASSERT_TRUE(chk.offender.has_value());
  EXPECT_EQ(*chk.offender, 0u);  // TOTAL, in top-to-bottom indexing
  EXPECT_EQ(chk.missing,
            props::make_set({Property::kVirtualSemiSync,
                             Property::kVirtualSync,
                             Property::kConsistentViews}));
}

// -- well-formed stacks lint clean -------------------------------------------

TEST(Lint, CanonicalPaperStackIsClean) {
  LintReport rep = lint_spec("TOTAL:MBRSHIP:FRAG:NAK:COM");
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(rep.diagnostics.size(), 0u) << rep.to_string();
}

TEST(Lint, PackAtTopOfOrderedStackIsClean) {
  LintReport rep = lint_spec("PACK:TOTAL:MBRSHIP:FRAG:NAK:COM");
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(rep.diagnostics.size(), 0u) << rep.to_string();
}

TEST(Lint, PackPlacementSuggestionsAreActionable) {
  LintReport ordered = lint_spec("TOTAL:PACK:MBRSHIP:FRAG:NAK:COM");
  const LintDiagnostic* below = find_rule(ordered, "pack-below-ordering");
  ASSERT_NE(below, nullptr);
  EXPECT_NE(below->suggestion.find("move PACK above TOTAL"),
            std::string::npos)
      << below->suggestion;
  LintReport bare = lint_spec("PACK:NAK:COM");
  const LintDiagnostic* frag = find_rule(bare, "pack-needs-frag");
  ASSERT_NE(frag, nullptr);
  EXPECT_NE(frag->suggestion.find("FRAG"), std::string::npos)
      << frag->suggestion;
}

TEST(Lint, EveryRegisteredLayerNameResolves) {
  for (const std::string& name : layers::layer_names()) {
    EXPECT_NO_THROW((void)layers::layer_info(name)) << name;
  }
}

// -- warning rules ------------------------------------------------------------

TEST(Lint, FlagsDeliberatelyRedundantLayer) {
  // COM already provides P10 (it appends a CRC trailer); a CHKSUM above it
  // re-provides a guarantee the stack below already has.
  LintReport rep = lint_spec("CHKSUM:COM");
  EXPECT_TRUE(rep.ok()) << rep.to_string();  // a warning, not an error
  const LintDiagnostic* d = find_rule(rep, "redundant-layer");
  ASSERT_NE(d, nullptr) << rep.to_string();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->layer, "CHKSUM");
  // ... while the same CHKSUM over the trailer-less RAWCOM is load-bearing.
  EXPECT_EQ(find_rule(lint_spec("CHKSUM:RAWCOM"), "redundant-layer"), nullptr);
}

TEST(Lint, FlagsDeadGuaranteeMaskedByLayerAbove) {
  // Synthetic rows: PROV provides P2, but MASK above it neither inherits
  // nor re-provides P2 -- PROV's guarantee is dead weight.
  props::PropertySet p1 = props::make_set({Property::kBestEffort});
  LintLayer xport{"XPORT",
                  {"XPORT", /*requires*/ p1,
                   /*inherits*/ props::kAllProperties, /*provides*/ 0, 1},
                  /*is_transport=*/true};
  LintLayer prov{"PROV",
                 {"PROV", 0, props::kAllProperties,
                  props::make_set({Property::kPrioritized}), 1},
                 false};
  LintLayer mask{"MASK",
                 {"MASK", 0,
                  props::kAllProperties &
                      ~props::make_set({Property::kPrioritized}),
                  0, 1},
                 false};

  LintReport rep = lint_stack({mask, prov, xport}, {}, p1);
  const LintDiagnostic* d = find_rule(rep, "dead-guarantee");
  ASSERT_NE(d, nullptr) << rep.to_string();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->layer, "MASK");  // the masking layer is the offender
  EXPECT_NE(d->message.find("PROV"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("{P2}"), std::string::npos) << d->message;

  // Masking a NETWORK-provided property is environment, not a stack
  // smell: MASK directly over the transport must not warn.
  LintReport quiet = lint_stack({mask, xport}, {}, p1);
  EXPECT_EQ(find_rule(quiet, "dead-guarantee"), nullptr) << quiet.to_string();
}

// -- live-switch transition check (horus-lint --diff) -------------------------

std::vector<props::LayerSpec> rows(const std::string& spec) {
  std::vector<props::LayerSpec> out;
  for (const std::string& name : layers::split_spec(spec)) {
    out.push_back(layers::layer_spec(name));
  }
  return out;
}

const props::PropertySet kNet = props::make_set({Property::kBestEffort});

TEST(Lint, TransitionLegalWhenRequiredPreserved) {
  // The acceptance switch NAK -> MCAST:NNAK: every property the old stack
  // provided survives, and the MCAST transport adds best-effort multicast.
  auto old_rows = rows("TOTAL:MBRSHIP:FRAG:NAK:COM");
  auto new_rows = rows("TOTAL:MBRSHIP:FRAG:MCAST:NNAK:COM");
  props::PropertySet required = props::check_stack(old_rows, kNet).result;
  props::TransitionCheck tc =
      props::check_transition(old_rows, new_rows, kNet, required);
  EXPECT_TRUE(tc.legal) << tc.error;
  EXPECT_EQ(tc.missing, 0u);
  EXPECT_EQ(tc.lost, 0u);
  EXPECT_EQ(tc.gained, props::make_set({Property::kBestEffort}));
}

TEST(Lint, TransitionMayDropUnrequiredProperties) {
  // Dropping TOTAL loses P6, but an application that never asked for total
  // order is allowed to shed it live.
  auto old_rows = rows("TOTAL:MBRSHIP:FRAG:NAK:COM");
  auto new_rows = rows("MBRSHIP:FRAG:NAK:COM");
  props::PropertySet required =
      props::make_set({Property::kFifoMulticast, Property::kVirtualSync});
  props::TransitionCheck tc =
      props::check_transition(old_rows, new_rows, kNet, required);
  EXPECT_TRUE(tc.legal) << tc.error;
  EXPECT_EQ(tc.lost, props::make_set({Property::kTotalOrder}));
  EXPECT_EQ(tc.missing, 0u);
}

TEST(Lint, TransitionDroppingRequiredPropertyIsIllegal) {
  auto old_rows = rows("TOTAL:MBRSHIP:FRAG:NAK:COM");
  auto new_rows = rows("MBRSHIP:FRAG:NAK:COM");
  // Endpoint::set_required's default: require everything the joined stack
  // provided, which includes P6.
  props::PropertySet required = props::check_stack(old_rows, kNet).result;
  props::TransitionCheck tc =
      props::check_transition(old_rows, new_rows, kNet, required);
  EXPECT_FALSE(tc.legal);
  EXPECT_EQ(tc.missing, props::make_set({Property::kTotalOrder}));
  // The diagnosis names the dropped set so the operator sees the delta.
  EXPECT_NE(tc.error.find("drops required"), std::string::npos) << tc.error;
  EXPECT_NE(tc.error.find("{P6}"), std::string::npos) << tc.error;
}

TEST(Lint, TransitionToIllFormedStackIsIllegal) {
  auto old_rows = rows("TOTAL:MBRSHIP:FRAG:NAK:COM");
  auto new_rows = rows("TOTAL:FRAG:COM");  // FRAG lacks FIFO below it
  props::TransitionCheck tc = props::check_transition(
      old_rows, new_rows, kNet, /*required=*/0);
  EXPECT_FALSE(tc.legal);
  EXPECT_EQ(tc.new_provided, 0u);
  EXPECT_NE(tc.error.find("ill-formed"), std::string::npos) << tc.error;
}

TEST(Lint, TransitionFromIllFormedOldStackReportsFullGain) {
  // An ill-formed old stack provides nothing; switching to a well-formed
  // stack is legal (if the requirement is met) and the whole new set is
  // reported as gained.
  auto old_rows = rows("TOTAL:FRAG:COM");
  auto new_rows = rows("TOTAL:MBRSHIP:FRAG:NAK:COM");
  props::TransitionCheck tc = props::check_transition(
      old_rows, new_rows, kNet, props::make_set({Property::kTotalOrder}));
  EXPECT_TRUE(tc.legal) << tc.error;
  EXPECT_EQ(tc.old_provided, 0u);
  EXPECT_EQ(tc.gained, tc.new_provided);
}

// -- runtime wiring: validate_stacks ------------------------------------------

TEST(Lint, EndpointCreationRejectsIllFormedSpecNamingOffender) {
  HorusSystem sys;  // validate_stacks defaults to on
  try {
    sys.create_endpoint("TOTAL:FRAG:COM");
    FAIL() << "ill-formed spec must be rejected at endpoint creation";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("FRAG"), std::string::npos) << msg;
    EXPECT_NE(msg.find("missing-requirement"), std::string::npos) << msg;
  }
}

TEST(Lint, EndpointCreationAcceptsWarningOnlySpecs) {
  HorusSystem sys;
  EXPECT_NO_THROW(sys.create_endpoint("CHKSUM:COM"));
}

TEST(Lint, MakeStackNamesPositionAndSuggestsFix) {
  try {
    (void)layers::make_stack("TOTAL:MBRSHIPP:COM");
    FAIL() << "unknown layer must be rejected";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("MBRSHIPP"), std::string::npos) << msg;
    EXPECT_NE(msg.find("position 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("TOTAL:MBRSHIPP:COM"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean MBRSHIP?"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace horus::analysis
