// horus-race: the group-ownership checker must catch each class of
// misbehavior it was built for -- and stay silent on a correct world.
//
// Four deliberately-misbehaving components, each engineered to trip
// exactly one probe class (docs/analysis.md "horus-race"):
//
//   1. cross-group state write: an upcall handler running as group A
//      reaches into group B's view;
//   2. wrong-group timer: a task running as group A arms a stack timer
//      bound to group B;
//   3. retained stack pointer: layer state of the pre-switch epoch is
//      read through a stale Stack* after a live reconfiguration installed
//      the new epoch (outside the sanctioned shadow-drain paths);
//   4. unsynchronized counter: two groups on different shards bump one
//      plain (non-atomic) counter with no happens-before edge.
//
// Plus the other half of the contract: a full sharded multi-group world
// with live reconfigurations mid-traffic must produce ZERO violations --
// every legal cross-group handoff (message transfer, shadow drain, state
// transfer, drain barriers) is recognized, not flagged.
//
// The whole suite skips itself in builds without -DHORUS_CHECK_RACES
// (probes compile to nothing there; Debug defaults the flag on).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "../common/test_util.hpp"
#include "horus/analysis/race.hpp"
#include "horus/runtime/executor.hpp"

namespace horus::testing {
namespace {

constexpr GroupId kA{201};
constexpr GroupId kB{202};

/// Counter bookkeeping shared by the seeded-violation tests: assert that
/// ONLY the expected class fired (a seeded bug tripping a neighboring
/// probe means the probes are mislabeled, not that the bug was caught).
void expect_only(const race::CounterSnapshot& c, std::uint64_t cross,
                 std::uint64_t timer, std::uint64_t stale,
                 std::uint64_t unsynced) {
  EXPECT_EQ(c.cross_group, cross);
  EXPECT_EQ(c.wrong_group_timer, timer);
  EXPECT_EQ(c.stale_epoch, stale);
  EXPECT_EQ(c.unsynced_write, unsynced);
}

class RaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!race::enabled()) {
      GTEST_SKIP() << "built without HORUS_CHECK_RACES";
    }
    race::reset();
  }
  void TearDown() override {
    if (race::enabled()) race::reset();
  }
};

/// Two membership-less groups on one endpoint pair; returns after views
/// are installed and a warmup cast has flowed.
struct TwoGroupWorld {
  explicit TwoGroupWorld(unsigned shards) : sys(make_opts(shards)) {
    a = &sys.create_endpoint("NAK:COM");
    b = &sys.create_endpoint("NAK:COM");
    std::vector<Address> members{a->address(), b->address()};
    for (GroupId gid : {kA, kB}) {
      a->join(gid);
      b->join(gid);
    }
    sys.run_for(5 * sim::kMillisecond);
    for (GroupId gid : {kA, kB}) {
      a->install_view(gid, members);
      b->install_view(gid, members);
    }
    sys.run_for(20 * sim::kMillisecond);
  }

  static HorusSystem::Options make_opts(unsigned shards) {
    HorusSystem::Options o;
    o.shards = shards;
    o.net.loss = 0.0;
    return o;
  }

  HorusSystem sys;
  Endpoint* a = nullptr;
  Endpoint* b = nullptr;
};

// -- 1. cross-group state write ---------------------------------------------

TEST_F(RaceTest, CatchesCrossGroupStateAccess) {
  TwoGroupWorld w(0);
  // The misbehaving component: while handling group A's upcall (so the
  // executing task is framed as group A), reach into group B's view --
  // exactly the "it is all in one process, why not just look" bug the
  // ownership discipline exists to forbid.
  bool poked = false;
  w.b->on_upcall([&](Group& g, UpEvent& ev) {
    if (ev.type != UpType::kCast || g.gid() != kA || poked) return;
    poked = true;
    (void)w.b->group(kB).view();  // group B's state, group A's task
  });
  w.a->cast(kA, Message::from_string("trigger"));
  w.sys.run_for(sim::kSecond);

  ASSERT_TRUE(poked);
  race::CounterSnapshot c = race::counters();
  expect_only(c, 1, 0, 0, 0);
  // The report must name both sides of the violation.
  std::vector<race::Report> reps = race::reports();
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].kind, race::Kind::kCrossGroup);
  EXPECT_EQ(reps[0].owner_gid, kB.id);     // whose state was touched
  EXPECT_EQ(reps[0].accessor_gid, kA.id);  // who was executing
  EXPECT_NE(reps[0].to_string().find("Group::view"), std::string::npos);
}

// -- 2. timer armed for the wrong group -------------------------------------

TEST_F(RaceTest, CatchesWrongGroupTimer) {
  TwoGroupWorld w(0);
  // The misbehaving component: a task running as group A arms a stack
  // timer bound to group B. The violation is flagged at ARMING time (the
  // bug is where the timer was posted from, not where it fires), so the
  // callback deliberately touches nothing.
  bool armed = false;
  w.b->on_upcall([&](Group& g, UpEvent& ev) {
    if (ev.type != UpType::kCast || g.gid() != kA || armed) return;
    armed = true;
    g.stack().schedule(kB, sim::kMillisecond, [](Group&) {});
  });
  w.a->cast(kA, Message::from_string("trigger"));
  w.sys.run_for(sim::kSecond);

  ASSERT_TRUE(armed);
  race::CounterSnapshot c = race::counters();
  expect_only(c, 0, 1, 0, 0);
  std::vector<race::Report> reps = race::reports();
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].kind, race::Kind::kWrongGroupTimer);
  EXPECT_EQ(reps[0].owner_gid, kB.id);
  EXPECT_EQ(reps[0].accessor_gid, kA.id);
}

// -- 3. retained stack pointer across a reconfiguration ---------------------

TEST_F(RaceTest, CatchesStaleEpochStateAccess) {
  HorusSystem::Options opts;
  opts.shards = 0;
  HorusSystem sys(opts);
  auto& a = sys.create_endpoint("TOTAL:MBRSHIP:FRAG:NAK:COM");
  GroupId gid{7};
  a.join(gid);
  sys.run_for(2 * sim::kSecond);

  // The misbehaving component: hold on to the pre-switch stack pointer...
  Stack* old_stack = &a.group(gid).stack();
  a.reconfigure(gid, "TOTAL:MBRSHIP:FRAG:MCAST:NNAK:COM");
  for (int i = 0; i < 50 && a.group(gid).epoch_number() == 0; ++i) {
    sys.run_for(10 * sim::kMillisecond);
  }
  ASSERT_EQ(a.group(gid).epoch_number(), 1u);
  ASSERT_NE(&a.group(gid).stack(), old_stack);
  race::reset();  // only judge the access below, not the warmup/switch

  // ...and read the old epoch's layer state through it after the new
  // epoch is installed. The old epoch still exists (it is draining
  // stragglers), but only the endpoint's shadow-drain paths may touch it.
  (void)a.group(gid).state_at(*old_stack, 0);

  race::CounterSnapshot c = race::counters();
  expect_only(c, 0, 0, 1, 0);
  std::vector<race::Report> reps = race::reports();
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].kind, race::Kind::kStaleEpoch);
  EXPECT_EQ(reps[0].owner_gid, gid.id);
}

// -- 4. plain counter shared across shards ----------------------------------

TEST_F(RaceTest, CatchesUnsynchronizedCounterWrite) {
  runtime::ShardedExecutor ex(4);
  // Two group keys pinned to DIFFERENT shards, so their tasks run on
  // different worker threads with no ordering between them.
  runtime::GroupKey ga = 1;
  runtime::GroupKey gb = 2;
  while (ex.shard_of(gb) == ex.shard_of(ga)) ++gb;

  // The misbehaving component: a plain int bumped from both groups. The
  // probe is what a stats counter would wear if someone "simplified" a
  // relaxed atomic into a plain ++ (the audit this PR ran on
  // msg_path_stats/NetStats found none -- this seeds one).
  int plain_counter = 0;
  auto bump = [&plain_counter] {
    HORUS_RACE_PROBE_PLAIN_WRITE(&plain_counter, "seeded plain counter");
    ++plain_counter;
  };
  ex.post(ga, bump);
  ex.post(gb, bump);
  ex.drain();

  race::CounterSnapshot c = race::counters();
  // Whichever task runs second observes the first's unordered write; if
  // the interleaving is tight both directions may flag.
  EXPECT_GE(c.unsynced_write, 1u);
  EXPECT_LE(c.unsynced_write, 2u);
  EXPECT_EQ(c.cross_group, 0u);
  EXPECT_EQ(c.wrong_group_timer, 0u);
  EXPECT_EQ(c.stale_epoch, 0u);
  ASSERT_FALSE(race::reports().empty());
  EXPECT_EQ(race::reports()[0].kind, race::Kind::kUnsyncedWrite);

  // Control: the same shape with a real happens-before edge (drain() is a
  // barrier) is legal.
  race::reset();
  ex.post(ga, bump);
  ex.drain();
  ex.post(gb, bump);
  ex.drain();
  EXPECT_EQ(race::counters().unsynced_write, 0u);
}

// -- zero violations on a correct world -------------------------------------

/// The reconfig_shard stress in miniature plus multi-group cast traffic:
/// everything horus-race must NOT flag -- sharded delivery, coordinated
/// switches, shadow drains, state transfer, driver-thread polling.
TEST_F(RaceTest, CorrectShardedWorldWithReconfigIsSilent) {
  constexpr std::size_t kGroups = 4;
  HorusSystem::Options opts;
  opts.shards = 4;
  HorusSystem sys(opts);
  auto& a = sys.create_endpoint("TOTAL:MBRSHIP:FRAG:NAK:COM");
  auto& b = sys.create_endpoint("TOTAL:MBRSHIP:FRAG:NAK:COM");

  std::vector<std::vector<std::string>> logs(kGroups);
  b.on_upcall([&logs](Group& g, UpEvent& ev) {
    if (ev.type != UpType::kCast) return;
    logs[g.gid().id - 1].push_back(ev.msg.payload_string());
  });

  for (std::size_t i = 0; i < kGroups; ++i) {
    GroupId gid{static_cast<std::uint64_t>(i + 1)};
    a.join(gid);
    sys.run_for(50 * sim::kMillisecond);
    b.join(gid, a.address());
    sys.run_for(50 * sim::kMillisecond);
  }
  sys.run_for(2 * sim::kSecond);

  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < kGroups; ++i) {
      GroupId gid{static_cast<std::uint64_t>(i + 1)};
      a.cast(gid, Message::from_string("r" + std::to_string(round) + "-g" +
                                       std::to_string(i)));
    }
    sys.run_for(200 * sim::kMillisecond);
  }

  // Switch half the groups mid-traffic; casts land during the flush.
  for (std::size_t i = 0; i < kGroups; i += 2) {
    GroupId gid{static_cast<std::uint64_t>(i + 1)};
    a.reconfigure(gid, "TOTAL:MBRSHIP:FRAG:MCAST:NNAK:COM");
    b.cast(gid, Message::from_string("mid-" + std::to_string(i)));
  }
  sys.run_for(4 * sim::kSecond);

  for (std::size_t i = 0; i < kGroups; ++i) {
    GroupId gid{static_cast<std::uint64_t>(i + 1)};
    a.cast(gid, Message::from_string("post-" + std::to_string(i)));
  }
  sys.run_for(2 * sim::kSecond);

  for (std::size_t i = 0; i < kGroups; ++i) {
    EXPECT_FALSE(logs[i].empty()) << "group " << i << " delivered nothing";
  }
  EXPECT_EQ(race::total_violations(), 0u) << race::summary();
}

/// Same world, deterministic single-thread executor: the probes must be
/// equally silent when every task runs inline on the driver thread
/// (nested group frames, not thread identity, carry the ownership).
TEST_F(RaceTest, CorrectDeterministicWorldIsSilent) {
  TwoGroupWorld w(0);
  for (int i = 0; i < 20; ++i) {
    w.a->cast(i % 2 ? kA : kB, Message::from_string("m" + std::to_string(i)));
  }
  w.sys.run_for(sim::kSecond);
  EXPECT_EQ(race::total_violations(), 0u) << race::summary();
}

}  // namespace
}  // namespace horus::testing
