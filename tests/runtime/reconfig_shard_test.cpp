// Live reconfiguration under the sharded runtime: many groups switch
// stacks concurrently on different shards while traffic flows.
//
// What TSan proves here (this test is part of the TSan CI job):
//  * build_epoch_stack may run for different groups on different shards at
//    once -- the endpoint's epoch-stack table is the only shared state and
//    must be properly guarded;
//  * the epoch swap (Group::adopt_epoch + the atomic current-stack store)
//    is safe against application threads posting downcalls concurrently;
//  * per-group task serialization survives the switch: group-local layer
//    state is written without locks before, during and after it.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "../common/test_util.hpp"

namespace horus::testing {
namespace {

constexpr const char* kOldSpec = "TOTAL:MBRSHIP:FRAG:NAK:COM";
constexpr const char* kNewSpec = "TOTAL:MBRSHIP:FRAG:MCAST:NNAK:COM";
constexpr std::size_t kGroups = 6;

void concurrent_group_switches(unsigned shards) {
  HorusSystem::Options opts;
  opts.shards = shards;
  HorusSystem sys(opts);
  auto& a = sys.create_endpoint(kOldSpec);
  auto& b = sys.create_endpoint(kOldSpec);

  // One payload log per (endpoint, group); upcalls for one group are
  // serialized by its shard, so no locking (TSan checks that claim).
  std::vector<std::vector<std::string>> a_log(kGroups);
  std::vector<std::vector<std::string>> b_log(kGroups);
  auto attach = [](Endpoint& ep, std::vector<std::vector<std::string>>& log) {
    ep.on_upcall([&log](Group& g, UpEvent& ev) {
      if (ev.type != UpType::kCast) return;
      log[g.gid().id - 1].push_back(ev.msg.payload_string());
    });
  };
  attach(a, a_log);
  attach(b, b_log);

  for (std::size_t i = 0; i < kGroups; ++i) {
    GroupId gid{static_cast<std::uint64_t>(i + 1)};
    a.join(gid);
    sys.run_for(50 * sim::kMillisecond);
    b.join(gid, a.address());
    sys.run_for(50 * sim::kMillisecond);
  }
  sys.run_for(2 * sim::kSecond);

  for (std::size_t i = 0; i < kGroups; ++i) {
    GroupId gid{static_cast<std::uint64_t>(i + 1)};
    a.cast(gid, Message::from_string("pre-" + std::to_string(i)));
  }
  sys.run_for(sim::kSecond);

  // Fire every group's switch back to back; the coordinated flushes (and
  // the epoch-stack builds they trigger) overlap across shards. Casts
  // land mid-switch.
  for (std::size_t i = 0; i < kGroups; ++i) {
    GroupId gid{static_cast<std::uint64_t>(i + 1)};
    (i % 2 == 0 ? a : b).reconfigure(gid, kNewSpec);
    b.cast(gid, Message::from_string("mid-" + std::to_string(i)));
  }
  sys.run_for(4 * sim::kSecond);

  for (std::size_t i = 0; i < kGroups; ++i) {
    GroupId gid{static_cast<std::uint64_t>(i + 1)};
    a.cast(gid, Message::from_string("post-" + std::to_string(i)));
  }
  sys.run_for(2 * sim::kSecond);

  for (std::size_t i = 0; i < kGroups; ++i) {
    GroupId gid{static_cast<std::uint64_t>(i + 1)};
    EXPECT_EQ(a.group(gid).epoch_number(), 1u) << "group " << i;
    EXPECT_EQ(b.group(gid).epoch_number(), 1u) << "group " << i;
    EXPECT_EQ(a.group(gid).stack().spec_string(), kNewSpec) << "group " << i;
    EXPECT_EQ(b.group(gid).stack().spec_string(), kNewSpec) << "group " << i;
    std::vector<std::string> want = {"pre-" + std::to_string(i),
                                     "mid-" + std::to_string(i),
                                     "post-" + std::to_string(i)};
    EXPECT_EQ(a_log[i], want) << "group " << i << " at a";
    EXPECT_EQ(b_log[i], want) << "group " << i << " at b";
  }
}

TEST(ReconfigSharded, ConcurrentSwitchesOneShard) {
  concurrent_group_switches(1);
}

TEST(ReconfigSharded, ConcurrentSwitchesFourShards) {
  concurrent_group_switches(4);
}

// The deterministic default executor must agree -- sharding changes
// scheduling, not switch semantics.
TEST(ReconfigSharded, ConcurrentSwitchesDeterministicBaseline) {
  concurrent_group_switches(0);
}

}  // namespace
}  // namespace horus::testing
