// Per-group ordering invariants under the sharded runtime (ISSUE 2).
//
// The paper's Section 3 monitor semantics promise exactly one active thread
// per *group object* while saying nothing about cross-group order. These
// stress tests pin down both halves under ShardedExecutor, with 1 shard and
// with N shards:
//
//  * per-group mutual exclusion: group-local state is written without any
//    locking (TSan proves the serialization is real, not lucky);
//  * per-producer-per-group FIFO: tasks posted in order by one thread for
//    one group run in that order;
//  * independent groups make concurrent progress (observed parallelism is
//    recorded; it cannot be asserted on single-core machines);
//  * end-to-end: two groups on one endpoint pair keep per-group FIFO
//    delivery (NAK) while both groups move through a sharded world.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "../common/test_util.hpp"
#include "horus/runtime/executor.hpp"

namespace horus::testing {
namespace {

struct GroupTrace {
  // Written by the group's tasks WITHOUT synchronization: the per-group
  // run-to-completion guarantee is the lock. TSan fails this suite if the
  // executor ever lets two tasks of one group overlap.
  std::vector<std::uint64_t> events;
  int depth = 0;       // concurrent tasks inside this group (must stay <= 1)
  int max_depth = 0;
};

void producer_consumer_stress(unsigned shards) {
  constexpr std::size_t kGroups = 8;
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kTasksPerProducer = 250;

  runtime::ShardedExecutor ex(shards);
  std::vector<GroupTrace> traces(kGroups);
  std::atomic<int> live_groups{0};  // groups with a task on a core right now
  std::atomic<int> max_live{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kTasksPerProducer; ++i) {
        for (std::size_t g = 0; g < kGroups; ++g) {
          ex.post(g, [&, p, i, g] {
            GroupTrace& t = traces[g];
            t.depth++;
            t.max_depth = std::max(t.max_depth, t.depth);
            int live = live_groups.fetch_add(1, std::memory_order_relaxed) + 1;
            int seen = max_live.load(std::memory_order_relaxed);
            while (live > seen &&
                   !max_live.compare_exchange_weak(seen, live)) {
            }
            t.events.push_back((p << 32) | i);
            live_groups.fetch_sub(1, std::memory_order_relaxed);
            t.depth--;
          });
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  ex.drain();

  for (std::size_t g = 0; g < kGroups; ++g) {
    const GroupTrace& t = traces[g];
    ASSERT_EQ(t.events.size(), kProducers * kTasksPerProducer) << "group " << g;
    EXPECT_EQ(t.max_depth, 1) << "two tasks overlapped inside group " << g;
    // Per-producer FIFO: each producer's tasks for this group appear in
    // posting order (cross-producer interleaving is unconstrained).
    std::uint64_t next_index[kProducers] = {};
    for (std::uint64_t e : t.events) {
      std::uint64_t p = e >> 32;
      std::uint64_t i = e & 0xffffffffULL;
      EXPECT_EQ(i, next_index[p]) << "group " << g << " producer " << p;
      next_index[p] = i + 1;
    }
  }
  EXPECT_EQ(ex.task_exceptions(), 0u);
  // On a multi-core host with several shards, distinct groups should have
  // been on cores simultaneously at least once. Recorded, not asserted:
  // single-core CI machines legitimately never overlap.
  ::testing::Test::RecordProperty("max_concurrent_groups", max_live.load());
}

TEST(ShardedOrdering, StressOneShard) { producer_consumer_stress(1); }

TEST(ShardedOrdering, StressFourShards) { producer_consumer_stress(4); }

// -- end to end: two groups over one endpoint pair --------------------------

constexpr GroupId kG1{101};
constexpr GroupId kG2{102};

struct PerGroupLog {
  // Upcalls for one group are serialized by that group's shard, so the
  // vector needs no lock (TSan checks that claim too).
  std::vector<std::string> payloads;
};

void two_group_world(unsigned shards) {
  HorusSystem::Options opts;
  opts.shards = shards;
  opts.net.loss = 0.0;
  HorusSystem sys(opts);
  auto& a = sys.create_endpoint("NAK:COM");
  auto& b = sys.create_endpoint("NAK:COM");

  PerGroupLog g1_log;
  PerGroupLog g2_log;
  b.on_upcall([&](Group& g, UpEvent& ev) {
    if (ev.type != UpType::kCast) return;
    PerGroupLog& log = g.gid() == kG1 ? g1_log : g2_log;
    log.payloads.push_back(ev.msg.payload_string());
  });

  std::vector<Address> members{a.address(), b.address()};
  for (GroupId gid : {kG1, kG2}) {
    a.join(gid);
    b.join(gid);
  }
  // Drain the join tasks before install_view touches the group objects from
  // this thread: view installation is a control-plane call and must not
  // overlap the groups' own tasks.
  sys.run_for(5 * sim::kMillisecond);
  for (GroupId gid : {kG1, kG2}) {
    a.install_view(gid, members);
    b.install_view(gid, members);
  }
  sys.run_for(20 * sim::kMillisecond);

  // Interleave casts to both groups; NAK must deliver each group's stream
  // in FIFO order regardless of how the shards interleave the two groups.
  constexpr int kMessages = 120;
  for (int i = 0; i < kMessages; ++i) {
    a.cast(kG1, Message::from_string("g1-" + std::to_string(i)));
    a.cast(kG2, Message::from_string("g2-" + std::to_string(i)));
    if (i % 10 == 9) sys.run_for(5 * sim::kMillisecond);
  }
  sys.run_for(2 * sim::kSecond);

  ASSERT_EQ(g1_log.payloads.size(), static_cast<std::size_t>(kMessages));
  ASSERT_EQ(g2_log.payloads.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(g1_log.payloads[i], "g1-" + std::to_string(i));
    EXPECT_EQ(g2_log.payloads[i], "g2-" + std::to_string(i));
  }
}

TEST(ShardedOrdering, TwoGroupsOneShard) { two_group_world(1); }

TEST(ShardedOrdering, TwoGroupsFourShards) { two_group_world(4); }

// The same world under the deterministic default executor must behave
// identically -- the sharded runtime changes scheduling, not semantics.
TEST(ShardedOrdering, TwoGroupsDeterministicBaseline) { two_group_world(0); }

}  // namespace
}  // namespace horus::testing
