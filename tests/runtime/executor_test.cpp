#include "horus/runtime/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace horus::runtime {
namespace {

TEST(InlineExecutor, RunsImmediately) {
  InlineExecutor ex;
  int ran = 0;
  ex.post([&] { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(InlineExecutor, Reentrant) {
  InlineExecutor ex;
  std::vector<int> order;
  ex.post([&] {
    order.push_back(1);
    ex.post([&] { order.push_back(2); });  // runs inside the outer task
    order.push_back(3);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(MonitorExecutor, RunToCompletion) {
  // The defining monitor property: a task posted from inside a task runs
  // AFTER the current task finishes -- one logical thread in the stack.
  MonitorExecutor ex;
  std::vector<int> order;
  ex.post([&] {
    order.push_back(1);
    ex.post([&] { order.push_back(2); });
    order.push_back(3);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(MonitorExecutor, DeepNestingDrains) {
  MonitorExecutor ex;
  int count = 0;
  std::function<void(int)> recurse = [&](int depth) {
    ++count;
    if (depth > 0) ex.post([&recurse, depth] { recurse(depth - 1); });
  };
  ex.post([&] { recurse(100); });
  EXPECT_EQ(count, 101);
}

TEST(MonitorExecutor, FifoOrder) {
  MonitorExecutor ex;
  std::vector<int> order;
  ex.post([&] {
    for (int i = 0; i < 5; ++i) ex.post([&order, i] { order.push_back(i); });
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MonitorExecutor, ThrowingTaskDoesNotWedgeTheQueue) {
  // Regression: a throwing task used to leave running_ latched forever, so
  // every later post queued behind a drain loop that no longer existed.
  MonitorExecutor ex;
  EXPECT_THROW(ex.post([] { throw std::runtime_error("boom"); }),
               std::runtime_error);
  int ran = 0;
  ex.post([&] { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(MonitorExecutor, TasksQueuedBehindThrowerSurvive) {
  MonitorExecutor ex;
  std::vector<int> order;
  EXPECT_THROW(ex.post([&] {
    ex.post([&] { order.push_back(1); });  // queued behind the thrower
    throw std::runtime_error("boom");
  }),
               std::runtime_error);
  EXPECT_TRUE(order.empty());  // drain aborted by the throw
  ex.post([&] { order.push_back(2); });  // resumes: old task first, FIFO
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(GroupExecutor, RunToCompletionMatchesMonitorOrder) {
  // The facade must be bit-identical to MonitorExecutor in dispatch order:
  // deterministic sim tests depend on it.
  GroupExecutor ex;
  std::vector<int> order;
  ex.post(7, [&] {
    order.push_back(1);
    ex.post(9, [&] { order.push_back(2); });
    ex.post(7, [&] { order.push_back(3); });
    order.push_back(4);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 4, 2, 3}));
  EXPECT_EQ(ex.executed(), 3u);
  EXPECT_EQ(ex.pending(), 0u);
}

TEST(GroupExecutor, TracksPerGroupQueues) {
  GroupExecutor ex;
  std::size_t seen_g1 = 0;
  std::size_t seen_g2 = 0;
  ex.post(1, [&] {
    ex.post(1, [] {});
    ex.post(2, [] {});
    ex.post(2, [] {});
    seen_g1 = ex.pending(1);
    seen_g2 = ex.pending(2);
  });
  EXPECT_EQ(seen_g1, 1u);
  EXPECT_EQ(seen_g2, 2u);
  EXPECT_EQ(ex.pending(), 0u);
}

TEST(GroupExecutor, ThrowingTaskDoesNotWedgeTheQueue) {
  GroupExecutor ex;
  EXPECT_THROW(ex.post(5, [] { throw std::runtime_error("boom"); }),
               std::runtime_error);
  int ran = 0;
  ex.post(5, [&] { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(SequencedExecutor, ExecutesInTicketOrder) {
  SequencedExecutor ex;
  std::vector<int> order;
  ex.post([&] {
    ex.post([&] { order.push_back(2); });
    ex.post([&] { order.push_back(3); });
    order.push_back(1);
  });
  ex.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SequencedExecutor, ThreadSafePosting) {
  SequencedExecutor ex;
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 250; ++i) {
        ex.post([&] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : threads) t.join();
  ex.drain();
  EXPECT_EQ(count.load(), 1000);
}

TEST(SequencedExecutor, ThrowingTaskDoesNotWedgeTheQueue) {
  // Regression: same latch bug as MonitorExecutor, but running_ lives
  // behind a mutex and the task runs unlocked.
  SequencedExecutor ex;
  EXPECT_THROW(ex.post([] { throw std::runtime_error("boom"); }),
               std::runtime_error);
  int ran = 0;
  ex.post([&] { ++ran; });
  ex.drain();
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolExecutor, RunsAllTasks) {
  ThreadPoolExecutor ex(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ex.post([&] { count.fetch_add(1); });
  }
  ex.drain();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolExecutor, StackLockSerializesBodies) {
  // The per-stack mutex means task bodies never overlap, even with many
  // worker threads (threaded Horus semantics).
  ThreadPoolExecutor ex(4);
  int unguarded = 0;  // written without atomics: the stack lock protects it
  for (int i = 0; i < 1000; ++i) {
    ex.post([&] { ++unguarded; });
  }
  ex.drain();
  EXPECT_EQ(unguarded, 1000);
}

TEST(ThreadPoolExecutor, DrainWaitsForActive) {
  ThreadPoolExecutor ex(2);
  std::atomic<bool> done{false};
  ex.post([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done = true;
  });
  ex.drain();
  EXPECT_TRUE(done.load());
}

TEST(ShardedExecutor, RunsAllTasks) {
  ShardedExecutor ex(4);
  std::atomic<int> count{0};
  for (GroupKey g = 0; g < 16; ++g) {
    for (int i = 0; i < 50; ++i) {
      ex.post(g, [&] { count.fetch_add(1); });
    }
  }
  ex.drain();
  EXPECT_EQ(count.load(), 800);
}

TEST(ShardedExecutor, PerGroupTasksNeverOverlap) {
  // The monitor invariant, per group: tasks for one group are serialized
  // (same shard FIFO), so a plain int per group needs no protection.
  ShardedExecutor ex(4);
  constexpr int kGroups = 8;
  int unguarded[kGroups] = {};
  for (int round = 0; round < 200; ++round) {
    for (int g = 0; g < kGroups; ++g) {
      ex.post(static_cast<GroupKey>(g), [&unguarded, g] { ++unguarded[g]; });
    }
  }
  ex.drain();
  for (int g = 0; g < kGroups; ++g) EXPECT_EQ(unguarded[g], 200) << g;
}

TEST(ShardedExecutor, PerGroupFifoOrder) {
  ShardedExecutor ex(3);
  constexpr int kGroups = 5;
  std::vector<int> order[kGroups];
  for (int i = 0; i < 100; ++i) {
    for (int g = 0; g < kGroups; ++g) {
      ex.post(static_cast<GroupKey>(g),
              [&order, g, i] { order[g].push_back(i); });
    }
  }
  ex.drain();
  for (int g = 0; g < kGroups; ++g) {
    ASSERT_EQ(order[g].size(), 100u);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(order[g][i], i);
  }
}

TEST(ShardedExecutor, TasksPostedByTasksCompleteBeforeDrainReturns) {
  ShardedExecutor ex(2);
  std::atomic<int> count{0};
  for (GroupKey g = 0; g < 4; ++g) {
    ex.post(g, [&ex, &count, g] {
      count.fetch_add(1);
      ex.post(g + 100, [&count] { count.fetch_add(1); });
    });
  }
  ex.drain();
  EXPECT_EQ(count.load(), 8);
}

TEST(ShardedExecutor, GroupsSpreadAcrossShards) {
  // Sequential group ids must not all hash onto one shard, or sharding
  // buys nothing for the common case.
  ShardedExecutor ex(4);
  std::set<unsigned> used;
  for (GroupKey g = 1; g <= 64; ++g) used.insert(ex.shard_of(g));
  EXPECT_EQ(used.size(), 4u);
}

TEST(ShardedExecutor, ShardAssignmentIsStable) {
  ShardedExecutor ex(4);
  for (GroupKey g = 0; g < 32; ++g) {
    EXPECT_EQ(ex.shard_of(g), ex.shard_of(g));
  }
}

TEST(ShardedExecutor, ThrowingTaskIsCountedAndWorkerSurvives) {
  ShardedExecutor ex(2);
  std::atomic<int> ran{0};
  ex.post(1, [] { throw std::runtime_error("boom"); });
  ex.drain();
  EXPECT_EQ(ex.task_exceptions(), 1u);
  ex.post(1, [&] { ++ran; });  // same shard keeps working
  ex.drain();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ShardedExecutor, DestructorFinishesQueuedWork) {
  std::atomic<int> count{0};
  {
    ShardedExecutor ex(2);
    for (int i = 0; i < 100; ++i) {
      ex.post(static_cast<GroupKey>(i), [&] { count.fetch_add(1); });
    }
    // no drain: the destructor must complete, not drop, the queue
  }
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace horus::runtime
