#include "horus/runtime/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace horus::runtime {
namespace {

TEST(InlineExecutor, RunsImmediately) {
  InlineExecutor ex;
  int ran = 0;
  ex.post([&] { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(InlineExecutor, Reentrant) {
  InlineExecutor ex;
  std::vector<int> order;
  ex.post([&] {
    order.push_back(1);
    ex.post([&] { order.push_back(2); });  // runs inside the outer task
    order.push_back(3);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(MonitorExecutor, RunToCompletion) {
  // The defining monitor property: a task posted from inside a task runs
  // AFTER the current task finishes -- one logical thread in the stack.
  MonitorExecutor ex;
  std::vector<int> order;
  ex.post([&] {
    order.push_back(1);
    ex.post([&] { order.push_back(2); });
    order.push_back(3);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(MonitorExecutor, DeepNestingDrains) {
  MonitorExecutor ex;
  int count = 0;
  std::function<void(int)> recurse = [&](int depth) {
    ++count;
    if (depth > 0) ex.post([&recurse, depth] { recurse(depth - 1); });
  };
  ex.post([&] { recurse(100); });
  EXPECT_EQ(count, 101);
}

TEST(MonitorExecutor, FifoOrder) {
  MonitorExecutor ex;
  std::vector<int> order;
  ex.post([&] {
    for (int i = 0; i < 5; ++i) ex.post([&order, i] { order.push_back(i); });
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SequencedExecutor, ExecutesInTicketOrder) {
  SequencedExecutor ex;
  std::vector<int> order;
  ex.post([&] {
    ex.post([&] { order.push_back(2); });
    ex.post([&] { order.push_back(3); });
    order.push_back(1);
  });
  ex.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SequencedExecutor, ThreadSafePosting) {
  SequencedExecutor ex;
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 250; ++i) {
        ex.post([&] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : threads) t.join();
  ex.drain();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolExecutor, RunsAllTasks) {
  ThreadPoolExecutor ex(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ex.post([&] { count.fetch_add(1); });
  }
  ex.drain();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolExecutor, StackLockSerializesBodies) {
  // The per-stack mutex means task bodies never overlap, even with many
  // worker threads (threaded Horus semantics).
  ThreadPoolExecutor ex(4);
  int unguarded = 0;  // written without atomics: the stack lock protects it
  for (int i = 0; i < 1000; ++i) {
    ex.post([&] { ++unguarded; });
  }
  ex.drain();
  EXPECT_EQ(unguarded, 1000);
}

TEST(ThreadPoolExecutor, DrainWaitsForActive) {
  ThreadPoolExecutor ex(2);
  std::atomic<bool> done{false};
  ex.post([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done = true;
  });
  ex.drain();
  EXPECT_TRUE(done.load());
}

}  // namespace
}  // namespace horus::runtime
