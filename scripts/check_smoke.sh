#!/usr/bin/env bash
# The horus-check smoke sweep: run the fixed seed corpus against the three
# canonical stacks, all oracles on auto. Any violation fails the sweep and
# leaves a shrunken repro.json behind (CI's check-smoke job uploads it as
# an artifact; locally, replay it with `horus-check --replay=<file>`).
#
# Usage: scripts/check_smoke.sh [path/to/horus-check] [path/to/corpus.txt]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
check="${1:-$root/build/tools/horus-check}"
corpus="${2:-$root/scripts/check_corpus.txt}"
out_dir="${CHECK_SMOKE_OUT:-.}"

if [[ ! -x "$check" ]]; then
  echo "horus-check not found at $check (build first, or pass its path)" >&2
  exit 2
fi
if [[ ! -f "$corpus" ]]; then
  echo "seed corpus not found at $corpus" >&2
  exit 2
fi

stacks=(
  "TOTAL:STABLE:MBRSHIP:FRAG:NAK:COM"
  "CAUSAL:MBRSHIP:FRAG:NAK:COM"
  "MBRSHIP:FRAG:NAK:COM"
)

failed=0
for stack in "${stacks[@]}"; do
  repro="$out_dir/repro-$(echo "$stack" | tr ':' '_').json"
  echo "== $stack =="
  if ! "$check" --stack="$stack" --seed-file="$corpus" --quiet \
      --repro="$repro"; then
    echo "FAILED: $stack (repro at $repro)" >&2
    failed=1
  fi
done

exit "$failed"
