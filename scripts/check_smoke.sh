#!/usr/bin/env bash
# The horus-check smoke sweep: run the fixed seed corpus against the three
# canonical stacks, all oracles on auto. Any violation fails the sweep and
# leaves a shrunken repro.json behind (CI's check-smoke job uploads it as
# an artifact; locally, replay it with `horus-check --replay=<file>`).
#
# Usage: scripts/check_smoke.sh [path/to/horus-check] [path/to/corpus.txt]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
check="${1:-$root/build/tools/horus-check}"
corpus="${2:-$root/scripts/check_corpus.txt}"
out_dir="${CHECK_SMOKE_OUT:-.}"

if [[ ! -x "$check" ]]; then
  echo "horus-check not found at $check (build first, or pass its path)" >&2
  exit 2
fi
if [[ ! -f "$corpus" ]]; then
  echo "seed corpus not found at $corpus" >&2
  exit 2
fi

stacks=(
  "TOTAL:STABLE:MBRSHIP:FRAG:NAK:COM"
  "CAUSAL:MBRSHIP:FRAG:NAK:COM"
  "MBRSHIP:FRAG:NAK:COM"
)

# The corpus mixes plain numeric seed lines with `stack=SPEC seeds=N`
# entries; horus-check's --seed-file only accepts numbers, so split them.
seeds_only="$(mktemp)"
trap 'rm -f "$seeds_only"' EXIT
grep -E '^[0-9]+$' "$corpus" > "$seeds_only" || true

failed=0
for stack in "${stacks[@]}"; do
  repro="$out_dir/repro-$(echo "$stack" | tr ':' '_').json"
  echo "== $stack =="
  if ! "$check" --stack="$stack" --seed-file="$seeds_only" --quiet \
      --repro="$repro"; then
    echo "FAILED: $stack (repro at $repro)" >&2
    failed=1
  fi
done

# Extra corpus stacks, each swept over its own sequential seed range. An
# optional `switch@MS=SPEC` token live-reconfigures the group to SPEC
# mid-workload (MS=0 derives a seed-dependent switch time); switch entries
# run without crashes/partitions so the cross-epoch oracle also enforces
# full delivery -- loss and duplication stay at the scenario defaults.
while IFS= read -r line; do
  [[ "$line" =~ ^stack=([A-Z0-9_:!]+)[[:space:]]+seeds=([0-9]+)([[:space:]]+switch@([0-9]+)=([A-Z0-9_:]+))?$ ]] || continue
  stack="${BASH_REMATCH[1]}"
  nseeds="${BASH_REMATCH[2]}"
  switch_ms="${BASH_REMATCH[4]}"
  switch_spec="${BASH_REMATCH[5]}"
  extra=()
  label="$stack"
  if [[ -n "$switch_spec" ]]; then
    extra+=("--switch-spec=$switch_spec" "--switch-at-ms=$switch_ms"
            "--crashes=0" "--partitions=0")
    label="$stack -> $switch_spec"
  fi
  repro="$out_dir/repro-$(echo "$label" | tr ': >' '_').json"
  echo "== $label (seeds 1..$nseeds) =="
  if ! "$check" --stack="$stack" --seeds="$nseeds" --quiet \
      --repro="$repro" "${extra[@]}"; then
    echo "FAILED: $label (repro at $repro)" >&2
    failed=1
  fi
done < "$corpus"

exit "$failed"
