#!/usr/bin/env python3
"""Compare a fresh Google-Benchmark JSON run against a committed baseline.

Usage:
    scripts/bench_compare.py FRESH.json BASELINE.json [--threshold=0.25]
                             [--report-only]

For every benchmark name present in both files the script compares:

  * ``real_time``      -- lower is better; a regression is fresh time more
                          than ``threshold`` above baseline.
  * rate counters      -- any counter whose name ends in ``/s`` (msgs/s,
                          bytes/s, items/s); higher is better, a regression
                          is fresh rate more than ``threshold`` below
                          baseline.

Benchmarks present in only one file are reported but never fail the run
(benches get added and removed; the guard is for drift in shared names).
Exit status is 1 when any regression exceeds the threshold, unless
``--report-only`` is given (CI's bench-smoke job runs report-only: absolute
times on shared runners are too noisy to gate merges, but the report makes
drift visible in the job log).
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """name -> {real_time, time_unit, counters{...}} from a benchmark JSON."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            # Keep only the mean aggregate; ignore stddev/cv/median rows.
            if b.get("aggregate_name") != "mean":
                continue
        name = b.get("run_name", b.get("name"))
        counters = {
            k: v
            for k, v in b.items()
            if isinstance(v, (int, float)) and k.endswith("/s")
        }
        out[name] = {
            "real_time": b.get("real_time"),
            "time_unit": b.get("time_unit", "ns"),
            "counters": counters,
        }
    return out


def pct(new, old):
    if old == 0:
        return float("inf")
    return (new - old) / old * 100.0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="freshly produced benchmark JSON")
    ap.add_argument("baseline", help="committed BENCH_*.json baseline")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed relative regression (default 0.25 = 25%%)",
    )
    ap.add_argument(
        "--report-only",
        action="store_true",
        help="print the comparison but always exit 0",
    )
    args = ap.parse_args()

    fresh = load_benchmarks(args.fresh)
    base = load_benchmarks(args.baseline)

    shared = sorted(set(fresh) & set(base))
    only_fresh = sorted(set(fresh) - set(base))
    only_base = sorted(set(base) - set(fresh))

    regressions = []
    print(f"bench_compare: {args.fresh} vs {args.baseline} "
          f"(threshold {args.threshold:.0%})")
    for name in shared:
        f, b = fresh[name], base[name]
        lines = []
        ft, bt = f["real_time"], b["real_time"]
        if ft is not None and bt is not None and bt > 0:
            delta = pct(ft, bt)
            flag = ""
            if ft > bt * (1.0 + args.threshold):
                flag = "  <-- REGRESSION"
                regressions.append(f"{name}: real_time {delta:+.1f}%")
            lines.append(
                f"    real_time {bt:.0f} -> {ft:.0f} {f['time_unit']}"
                f" ({delta:+.1f}%){flag}")
        for cname, bval in sorted(b["counters"].items()):
            fval = f["counters"].get(cname)
            if fval is None or bval <= 0:
                continue
            delta = pct(fval, bval)
            flag = ""
            if fval < bval * (1.0 - args.threshold):
                flag = "  <-- REGRESSION"
                regressions.append(f"{name}: {cname} {delta:+.1f}%")
            lines.append(
                f"    {cname} {bval:.3g} -> {fval:.3g} ({delta:+.1f}%){flag}")
        print(f"  {name}")
        for line in lines:
            print(line)

    for name in only_fresh:
        print(f"  {name}: new benchmark (no baseline)")
    for name in only_base:
        print(f"  {name}: missing from fresh run")

    if not shared:
        print("bench_compare: no shared benchmark names; nothing compared",
              file=sys.stderr)
        return 0 if args.report_only else 2

    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:")
        for r in regressions:
            print(f"  {r}")
        return 0 if args.report_only else 1

    print(f"bench_compare: OK ({len(shared)} benchmark(s) within "
          f"{args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
