#!/usr/bin/env bash
# Smoke test for the horus-node CLI: one bootstrap node over real loopback
# UDP must install its singleton view, deliver its own casts (COM sends to
# every view member, itself included, through the kernel) and exit 0.
#
# Usage: node_smoke.sh <path-to-horus-node>
set -euo pipefail

node="$1"
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

# Bind an ephemeral UDP socket, read the port back, release it. The tiny
# window before horus-node rebinds it is acceptable for a loopback test.
port=$(python3 -c '
import socket
s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
s.bind(("127.0.0.1", 0))
print(s.getsockname()[1])
s.close()')

echo "1 127.0.0.1:${port}" > "${dir}/book.txt"

out=$("$node" --id=1 --book="${dir}/book.txt" \
      --casts=5 --cast-start-ms=200 --cast-gap-ms=10 --run-ms=1500 \
      --metrics-dump="${dir}/metrics.prom")
echo "$out"

echo "$out" | grep -q '^RESULT id=1 ' || { echo "FAIL: no RESULT line"; exit 1; }
delivered=$(echo "$out" | sed -n 's/^RESULT.* delivered=\([0-9]*\).*/\1/p')
if [ "$delivered" != "5" ]; then
  echo "FAIL: expected 5 self-delivered casts, got '${delivered}'"
  exit 1
fi
echo "$out" | grep -q ' view=1 ' || { echo "FAIL: singleton view not installed"; exit 1; }

# --metrics-dump must produce parseable Prometheus text exposition: every
# non-comment line is "<name> <number>", names are horus_-prefixed, and the
# casts above must show up in the stack counters.
[ -s "${dir}/metrics.prom" ] || { echo "FAIL: metrics dump missing/empty"; exit 1; }
python3 - "${dir}/metrics.prom" <<'PY'
import re, sys
path = sys.argv[1]
metric = re.compile(r'^(horus_[A-Za-z0-9_:]+)(\{le="[^"]+"\})? (-?\d+)$')
names = {}
for i, line in enumerate(open(path), 1):
    line = line.rstrip("\n")
    if not line or line.startswith("# "):
        continue
    m = metric.match(line)
    if not m:
        sys.exit(f"FAIL: unparseable exposition line {i}: {line!r}")
    names[m.group(1)] = int(m.group(3))
for required in ("horus_stack_downcalls", "horus_udp_tx_datagrams"):
    if required not in names:
        sys.exit(f"FAIL: {required} missing from metrics dump")
if names["horus_stack_downcalls"] < 5:
    sys.exit(f"FAIL: expected >=5 downcalls, got {names['horus_stack_downcalls']}")
print(f"metrics dump OK ({len(names)} series)")
PY
echo "node smoke OK (port ${port})"
