#!/usr/bin/env python3
"""Convert `horus-lint --json` output into GitHub Actions annotations.

Usage:
    horus-lint --json SPEC... | python3 scripts/lint_annotations.py [--file F]

Reads one JSON array of lint reports (LintReport::to_json) on stdin and
prints one `::error` / `::warning` workflow command per finding, so lint
findings show up inline on the PR. `--file F` attaches the annotations to a
file path (e.g. the spec sweep's source file); without it they are bare
annotations on the run.

Exit status: 1 if any finding has severity "error", else 0 (warnings do not
fail the job here; pass --werror to horus-lint if they should).
"""
import argparse
import json
import sys


def esc(msg: str) -> str:
    """Escape a workflow-command message (the %/CR/LF triple GitHub needs)."""
    return msg.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--file", default="", help="file path to annotate")
    args = ap.parse_args()

    try:
        reports = json.load(sys.stdin)
    except json.JSONDecodeError as e:
        print(f"lint_annotations: bad JSON on stdin: {e}", file=sys.stderr)
        return 2
    if not isinstance(reports, list):
        print("lint_annotations: expected a JSON array", file=sys.stderr)
        return 2

    errors = 0
    for rep in reports:
        spec = rep.get("spec", "?")
        for f in rep.get("findings", []):
            sev = f.get("severity", "error")
            if sev == "error":
                errors += 1
            where = f"spec '{spec}'"
            if f.get("position", -1) >= 0:
                where += f" layer {f['layer']} (#{f['position'] + 1})"
            msg = f"[{f.get('rule', '?')}] {where}: {f.get('message', '')}"
            if f.get("suggestion"):
                msg += f" -- fix: {f['suggestion']}"
            loc = f",file={args.file}" if args.file else ""
            print(f"::{sev} title=horus-lint{loc}::{esc(msg)}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
