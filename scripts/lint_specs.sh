#!/usr/bin/env bash
# Lint every stack spec literal in the tree with horus-lint.
#
# Extracts every quoted colon-separated spec string from examples/, tests/,
# docs/ and the top-level markdown, keeps the ones whose every token is a
# registered layer name, and lints each. Specs listed in
# scripts/lint_allowlist.txt are expected to be ill-formed (tests assert
# their rejection); the sweep fails if one of them starts linting clean.
#
# Usage: scripts/lint_specs.sh [path/to/horus-lint]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
lint="${1:-$root/build/tools/horus-lint}"
allow="$root/scripts/lint_allowlist.txt"

if [[ ! -x "$lint" ]]; then
  echo "horus-lint not found at $lint (build first, or pass its path)" >&2
  exit 2
fi

# --list-layers prints "NAME batch_safe=... up_emits=..."; the layer name
# is the first field.
declare -A known
while IFS= read -r name; do
  known[$name]=1
done < <("$lint" --list-layers | awk '{print $1}')

is_spec() {
  local IFS=':' tok
  for tok in $1; do
    [[ -n ${known[$tok]:-} ]] || return 1
  done
}

mapfile -t cands < <(
  grep -rhoE '"[A-Z0-9_]+(:[A-Z0-9_]+)+"' \
    "$root/examples" "$root/tests" "$root/docs" \
    "$root/README.md" "$root/DESIGN.md" 2>/dev/null |
  tr -d '"' | sort -u)

checked=0
fail=0
bad_specs=()
for spec in "${cands[@]}"; do
  is_spec "$spec" || continue
  checked=$((checked + 1))
  if grep -qxF "$spec" "$allow" 2>/dev/null; then
    if "$lint" --quiet "$spec" >/dev/null 2>&1; then
      echo "ALLOWLISTED SPEC NOW LINTS CLEAN (remove it from $allow): $spec"
      fail=1
    fi
  else
    if ! out=$("$lint" "$spec" 2>&1); then
      echo "ILL-FORMED SPEC IN TREE:"
      echo "$out"
      fail=1
      bad_specs+=("$spec")
    fi
  fi
done

# Inside GitHub Actions, surface the failures as inline PR annotations too.
if [[ -n "${GITHUB_ACTIONS:-}" && ${#bad_specs[@]} -gt 0 ]]; then
  "$lint" --json "${bad_specs[@]}" |
    python3 "$root/scripts/lint_annotations.py" || true
fi

echo "lint_specs: checked $checked spec(s), $((${#cands[@]} - checked)) non-spec literal(s) skipped"
exit $fail
